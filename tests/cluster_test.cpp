// Unit tests for Cluster: CreateObj RPC plumbing, redirector notification
// ordering, offload recipient discovery, replica caps, and the census.
#include <gtest/gtest.h>

#include "core/cluster.h"

namespace radar::core {
namespace {

constexpr std::int32_t kNodes = 6;

MatrixDistanceOracle LineOracle(std::int32_t n) {
  MatrixDistanceOracle oracle(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) oracle.Set(a, b, b - a);
  }
  return oracle;
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest()
      : oracle_(LineOracle(kNodes)),
        cluster_(kNodes, oracle_, ProtocolParams{}, {0}) {}

  MatrixDistanceOracle oracle_;
  Cluster cluster_;
};

TEST_F(ClusterTest, InitialPlacementRegistersEverywhere) {
  cluster_.PlaceInitialObject(3, 2);
  EXPECT_TRUE(cluster_.host(2).HasObject(3));
  EXPECT_EQ(cluster_.redirectors().For(3).ReplicaCount(3), 1);
  EXPECT_EQ(cluster_.RouteRequest(3, 5), 2);
}

TEST_F(ClusterTest, CreateObjRpcMovesReplicaAndNotifiesRedirector) {
  cluster_.PlaceInitialObject(1, 0);
  const CreateObjResponse resp = cluster_.CreateObjRpc(
      0, 4, CreateObjMethod::kReplicate, 1, 0.5);
  EXPECT_TRUE(resp.accepted);
  EXPECT_TRUE(resp.created_new_copy);
  EXPECT_TRUE(cluster_.host(4).HasObject(1));
  EXPECT_EQ(cluster_.redirectors().For(1).ReplicaCount(1), 2);
  EXPECT_EQ(cluster_.total_transfers(), 1);
  EXPECT_EQ(cluster_.total_copies(), 1);
}

TEST_F(ClusterTest, AffinityIncrementIsNotACopy) {
  cluster_.PlaceInitialObject(1, 0);
  cluster_.CreateObjRpc(0, 4, CreateObjMethod::kReplicate, 1, 0.0);
  const CreateObjResponse resp = cluster_.CreateObjRpc(
      0, 4, CreateObjMethod::kReplicate, 1, 0.0);
  EXPECT_TRUE(resp.accepted);
  EXPECT_FALSE(resp.created_new_copy);
  EXPECT_EQ(cluster_.host(4).Affinity(1), 2);
  EXPECT_EQ(cluster_.total_transfers(), 2);
  EXPECT_EQ(cluster_.total_copies(), 1);
}

TEST_F(ClusterTest, TransferHookSeesEveryAcceptedTransfer) {
  cluster_.PlaceInitialObject(1, 0);
  struct Seen {
    NodeId from, to;
    ObjectId x;
    bool copied;
  };
  std::vector<Seen> seen;
  cluster_.set_transfer_hook([&](NodeId from, NodeId to, ObjectId x,
                                 CreateObjMethod, bool copied) {
    seen.push_back({from, to, x, copied});
  });
  cluster_.CreateObjRpc(0, 3, CreateObjMethod::kReplicate, 1, 0.0);
  cluster_.CreateObjRpc(0, 3, CreateObjMethod::kReplicate, 1, 0.0);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].to, 3);
  EXPECT_TRUE(seen[0].copied);
  EXPECT_FALSE(seen[1].copied);
}

TEST_F(ClusterTest, RefusedRpcLeavesNoTrace) {
  cluster_.PlaceInitialObject(1, 0);
  // Overload host 4 past the low watermark so it refuses.
  cluster_.host(4).AddInitialReplica(99);
  cluster_.redirectors().For(99).RegisterObject(99, 4);
  for (int i = 0; i < 2000; ++i) cluster_.host(4).RecordServiced(99, {4});
  cluster_.TickMeasurement(4, SecondsToSim(20.0));
  const CreateObjResponse resp = cluster_.CreateObjRpc(
      0, 4, CreateObjMethod::kReplicate, 1, 0.5);
  EXPECT_FALSE(resp.accepted);
  EXPECT_FALSE(cluster_.host(4).HasObject(1));
  EXPECT_EQ(cluster_.redirectors().For(1).ReplicaCount(1), 1);
  EXPECT_EQ(cluster_.total_transfers(), 0);
}

TEST_F(ClusterTest, ReplicaCapBlocksReplicationNotMigration) {
  cluster_.PlaceInitialObject(1, 0);
  cluster_.set_replica_cap([](ObjectId) { return 1; });  // migrate-only
  EXPECT_FALSE(
      cluster_.CreateObjRpc(0, 2, CreateObjMethod::kReplicate, 1, 0.0)
          .accepted);
  EXPECT_TRUE(
      cluster_.CreateObjRpc(0, 2, CreateObjMethod::kMigrate, 1, 0.0)
          .accepted);
}

TEST_F(ClusterTest, ReplicaCapAllowsAffinityIncrementOnHolder) {
  cluster_.PlaceInitialObject(1, 0);
  cluster_.set_replica_cap([](ObjectId) { return 1; });
  // Replicating onto the existing holder only raises affinity — the
  // physical replica count stays within the cap, so it is allowed.
  EXPECT_TRUE(
      cluster_.CreateObjRpc(3, 0, CreateObjMethod::kReplicate, 1, 0.0)
          .accepted);
  EXPECT_EQ(cluster_.redirectors().For(1).ReplicaCount(1), 1);
  EXPECT_EQ(cluster_.host(0).Affinity(1), 2);
}

TEST_F(ClusterTest, FindOffloadRecipientPicksLeastLoaded) {
  // Load host 1 at 50 req/s and host 2 at 10 req/s; others idle (0).
  for (const auto& [node, requests] :
       std::vector<std::pair<NodeId, int>>{{1, 1000}, {2, 200}}) {
    cluster_.host(node).AddInitialReplica(90 + node);
    cluster_.redirectors().For(90 + node).RegisterObject(90 + node, node);
    for (int i = 0; i < requests; ++i) {
      cluster_.host(node).RecordServiced(90 + node, {node});
    }
    cluster_.TickMeasurement(node, SecondsToSim(20.0));
  }
  // Ties at 0 among {0, 3, 4, 5} minus self: lowest id wins.
  EXPECT_EQ(cluster_.FindOffloadRecipient(0), 3);
  EXPECT_EQ(cluster_.FindOffloadRecipient(3), 0);
}

TEST_F(ClusterTest, FindOffloadRecipientNoneWhenAllAboveLw) {
  for (NodeId n = 0; n < kNodes; ++n) {
    cluster_.host(n).AddInitialReplica(90 + n);
    cluster_.redirectors().For(90 + n).RegisterObject(90 + n, n);
    for (int i = 0; i < 1700; ++i) {
      cluster_.host(n).RecordServiced(90 + n, {n});
    }
    cluster_.TickMeasurement(n, SecondsToSim(20.0));
  }
  EXPECT_EQ(cluster_.FindOffloadRecipient(0), kInvalidNode);
}

TEST_F(ClusterTest, ReportedLoadIsAdmissionEstimate) {
  cluster_.PlaceInitialObject(7, 0);
  cluster_.CreateObjRpc(0, 2, CreateObjMethod::kMigrate, 7, 3.0);
  EXPECT_DOUBLE_EQ(cluster_.ReportedLoad(2), 12.0);
}

TEST_F(ClusterTest, AverageReplicasPerObject) {
  cluster_.PlaceInitialObject(0, 0);
  cluster_.PlaceInitialObject(1, 1);
  cluster_.CreateObjRpc(0, 3, CreateObjMethod::kReplicate, 0, 0.0);
  EXPECT_DOUBLE_EQ(cluster_.AverageReplicasPerObject(), 1.5);
}

TEST_F(ClusterTest, SubsetInvariantHoldsAfterRelocations) {
  for (ObjectId x = 0; x < 20; ++x) {
    cluster_.PlaceInitialObject(x, x % kNodes);
  }
  cluster_.CreateObjRpc(0, 3, CreateObjMethod::kReplicate, 0, 0.0);
  cluster_.CreateObjRpc(1, 4, CreateObjMethod::kMigrate, 1, 0.0);
  cluster_.CheckRedirectorSubsetInvariant();  // must not abort
}

TEST_F(ClusterTest, DistanceDelegatesToOracle) {
  EXPECT_EQ(cluster_.Distance(0, 5), 5);
  EXPECT_EQ(cluster_.Distance(2, 2), 0);
}

TEST_F(ClusterTest, EndToEndMigrationViaPlacement) {
  // Place an object at 0, service it exclusively through node 5's paths,
  // run node 0's placement, and watch the object land on node 5.
  cluster_.PlaceInitialObject(1, 0);
  for (int i = 0; i < 100; ++i) {
    cluster_.host(0).RecordServiced(1, {0, 3, 5});
  }
  const PlacementStats stats =
      cluster_.RunPlacement(0, SecondsToSim(100.0));
  EXPECT_EQ(stats.geo_migrations, 1);
  EXPECT_FALSE(cluster_.host(0).HasObject(1));
  EXPECT_TRUE(cluster_.host(5).HasObject(1));
  EXPECT_EQ(cluster_.RouteRequest(1, 0), 5);
  cluster_.CheckRedirectorSubsetInvariant();
}

TEST(ClusterDeathTest, SelfRpcAborts) {
  MatrixDistanceOracle oracle(2);
  Cluster cluster(2, oracle, ProtocolParams{}, {0});
  cluster.PlaceInitialObject(1, 0);
  EXPECT_DEATH(
      cluster.CreateObjRpc(0, 0, CreateObjMethod::kReplicate, 1, 0.0),
      "RADAR_CHECK");
}

}  // namespace
}  // namespace radar::core
