// Edge cases and failure-injection tests across modules: boundary values
// of the protocol parameters, degenerate topologies and replica sets, and
// races the driver must tolerate.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "driver/hosting_simulation.h"
#include "fake_context.h"
#include "test_config.h"

namespace radar::core {
namespace {

using testing::FakeContext;

MatrixDistanceOracle LineOracle(std::int32_t n) {
  MatrixDistanceOracle oracle(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) oracle.Set(a, b, b - a);
  }
  return oracle;
}

TEST(EdgeCaseTest, ZeroDemandPlacementRoundIsInert) {
  ProtocolParams params;
  FakeContext ctx(4);
  HostAgent agent(0, 4, &params);
  agent.AddInitialReplica(1);
  ctx.redirector.RegisterObject(1, 0);
  // No requests at all: unit rate 0 < u, but the sole replica is
  // protected; nothing else may happen.
  const PlacementStats stats = agent.RunPlacement(ctx, SecondsToSim(100.0));
  EXPECT_EQ(stats.TotalRelocations(), 0);
  EXPECT_TRUE(agent.HasObject(1));
  EXPECT_TRUE(ctx.calls.empty());
}

TEST(EdgeCaseTest, PlacementAtEpochStartIsSkipped) {
  // EpochSeconds == 0: rates are undefined; the round must not divide by
  // zero or take action.
  ProtocolParams params;
  FakeContext ctx(4);
  HostAgent agent(0, 4, &params);
  agent.AddInitialReplica(1);
  ctx.redirector.RegisterObject(1, 0);
  const PlacementStats stats = agent.RunPlacement(ctx, 0);
  EXPECT_EQ(stats.TotalRelocations(), 0);
}

TEST(EdgeCaseTest, DeletionThresholdZeroNeverDrops) {
  ProtocolParams params;
  params.deletion_threshold_u = 0.0;  // structural: allowed, disables drops
  FakeContext ctx(4);
  HostAgent agent(0, 4, &params);
  agent.AddInitialReplica(1);
  ctx.redirector.RegisterObject(1, 0);
  ctx.redirector.OnReplicaCreated(1, 3);
  agent.RecordServiced(1, {0});  // tiny but nonzero rate
  const PlacementStats stats = agent.RunPlacement(ctx, SecondsToSim(100.0));
  EXPECT_EQ(stats.affinity_drops, 0);
}

TEST(EdgeCaseTest, MigrRatioOneDisablesMigration) {
  ProtocolParams params;
  params.migr_ratio = 1.0;  // a node can never *exceed* every path
  FakeContext ctx(4);
  HostAgent agent(0, 4, &params);
  agent.AddInitialReplica(1);
  ctx.redirector.RegisterObject(1, 0);
  for (int i = 0; i < 1000; ++i) agent.RecordServiced(1, {0, 3});
  const PlacementStats stats = agent.RunPlacement(ctx, SecondsToSim(100.0));
  EXPECT_EQ(stats.geo_migrations, 0);
  // Replication still proceeds (fraction 1.0 > repl_ratio).
  EXPECT_EQ(stats.geo_replications, 1);
}

TEST(EdgeCaseTest, TwoHostClusterKeepsLastReplicaAlive) {
  // Aggressive deletion thresholds cannot orphan an object even when both
  // hosts try to shed it in the same round.
  MatrixDistanceOracle oracle = LineOracle(2);
  ProtocolParams params;
  params.deletion_threshold_u = 1000.0;  // everything is "cold"
  params.replication_threshold_m = 4001.0 * params.deletion_threshold_u;
  Cluster cluster(2, oracle, params, {0});
  cluster.PlaceInitialObject(1, 0);
  cluster.CreateObjRpc(0, 1, CreateObjMethod::kReplicate, 1, 0.0);
  for (int i = 0; i < 10; ++i) {
    cluster.host(0).RecordServiced(1, {0});
    cluster.host(1).RecordServiced(1, {1});
  }
  cluster.RunPlacement(0, SecondsToSim(100.0));
  cluster.RunPlacement(1, SecondsToSim(100.0));
  EXPECT_EQ(cluster.redirectors().For(1).ReplicaCount(1), 1);
  cluster.CheckRedirectorSubsetInvariant();
}

TEST(EdgeCaseTest, OffloadRecipientEqualToBestCandidateStillWorks) {
  // The offload recipient may coincide with a geo candidate; the host
  // must not double-shed or corrupt its affinity bookkeeping.
  ProtocolParams params;
  FakeContext ctx(4);
  HostAgent agent(0, 4, &params);
  for (ObjectId x = 1; x <= 3; ++x) {
    agent.AddInitialReplica(x);
    ctx.redirector.RegisterObject(x, 0);
    ctx.Preload(0, x);
  }
  for (int i = 0; i < 700; ++i) {
    agent.RecordServiced(1, {0, 2});
    agent.RecordServiced(2, {0});
    agent.RecordServiced(3, {0});
  }
  agent.OnMeasurementTick(SecondsToSim(20.0));  // 105 req/s > hw
  ctx.offload_recipient = 2;
  const PlacementStats stats = agent.RunPlacement(ctx, SecondsToSim(100.0));
  // Object 1 geo-migrates to 2 (fraction 1.0); offload then also sheds
  // toward 2 until the recipient bound fills.
  EXPECT_EQ(stats.geo_migrations, 1);
  EXPECT_FALSE(agent.HasObject(1));
  for (ObjectId x = 1; x <= 3; ++x) {
    EXPECT_EQ(ctx.redirector.TotalAffinity(x),
              ctx.redirector.AffinityOf(x, 0) +
                  ctx.redirector.AffinityOf(x, 2) +
                  ctx.redirector.AffinityOf(x, 3));
  }
}

TEST(EdgeCaseTest, RedirectorSingleNodePlatform) {
  MatrixDistanceOracle oracle(1);
  Redirector redirector(oracle, 2.0);
  redirector.RegisterObject(1, 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(redirector.ChooseReplica(1, 0), 0);
  }
  EXPECT_FALSE(redirector.RequestDrop(1, 0));
}

TEST(EdgeCaseTest, DistributionConstantBelowOneDegeneratesToRoundRobin) {
  // For c < 1 the spill condition unitcnt(closest)/c > min is satisfied
  // as soon as counts are equal, so the algorithm always picks the least
  // counted replica — proximity-blind round-robin. Pathological (the
  // paper requires c > 1), but it must stay well-defined and balanced.
  MatrixDistanceOracle oracle = LineOracle(3);
  Redirector redirector(oracle, 0.5);
  redirector.RegisterObject(1, 0);
  redirector.OnReplicaCreated(1, 2);
  int near = 0;
  for (int i = 0; i < 1000; ++i) {
    if (redirector.ChooseReplica(1, 0) == 0) ++near;
  }
  EXPECT_NEAR(near / 1000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace radar::core

namespace radar::driver {
namespace {

TEST(EdgeCaseSimTest, SingleObjectPlatform) {
  SimConfig config;
  config.num_objects = 1;
  config.duration = SecondsToSim(300.0);
  config.workload = WorkloadKind::kUniform;
  const RunReport report = HostingSimulation(config).Run();
  EXPECT_GT(report.total_requests, 0);
  EXPECT_EQ(report.dropped_requests, 0);
}

TEST(EdgeCaseSimTest, SubSecondRunProducesEmptyButValidReport) {
  SimConfig config;
  config.num_objects = 10;
  config.duration = MillisToSim(1.0);
  const RunReport report = HostingSimulation(config).Run();
  EXPECT_EQ(report.dropped_requests, 0);
  EXPECT_GE(report.total_requests, 0);
  EXPECT_DOUBLE_EQ(report.BandwidthReductionPercent(), 0.0);
}

TEST(EdgeCaseSimTest, PlacementIntervalLongerThanRunMeansStatic) {
  SimConfig config = testing::ScaledPaperConfig();
  config.duration = SecondsToSim(300.0);
  config.protocol.placement_interval = SecondsToSim(10'000.0);
  const RunReport report = HostingSimulation(config).Run();
  EXPECT_EQ(report.TotalRelocations(), 0);
  EXPECT_DOUBLE_EQ(report.final_avg_replicas, 1.0);
}

TEST(EdgeCaseSimTest, UnstableThresholdsStillServeEveryRequest) {
  // Deliberately violating 4u < m causes churn, never lost requests or a
  // broken redirector table.
  SimConfig config = testing::ScaledPaperConfig();
  config.duration = SecondsToSim(600.0);
  config.workload = WorkloadKind::kHotPages;
  config.protocol.replication_threshold_m =
      2.0 * config.protocol.deletion_threshold_u;
  ASSERT_FALSE(config.protocol.IsStable());
  HostingSimulation sim(config);
  const RunReport report = sim.Run();
  EXPECT_EQ(report.dropped_requests, 0);
  sim.cluster().CheckRedirectorSubsetInvariant();
}

}  // namespace
}  // namespace radar::driver
