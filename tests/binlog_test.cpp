// Tests for the append-only binlog (binlog/binlog.h) and capture replay
// (binlog/replay.h). The torture section truncates a multi-record log at
// every byte offset and flips bits through every region of a record
// header, asserting the reader always returns exactly the valid prefix
// with the right stop_reason — a writer killed mid-append costs the tail,
// never the prefix. The replay section pins determinism: two reads of one
// capture produce identical traces.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "binlog/binlog.h"
#include "binlog/replay.h"
#include "common/rng.h"
#include "wire/codec.h"

namespace radar::binlog {
namespace {

/// Unique-per-test temp path; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = testing::TempDir() + "radar_binlog_" + tag + "_" +
            std::to_string(::getpid()) + ".bin";
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::uint8_t> FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

Record MakeRecord(std::int64_t t, std::int32_t src, std::int32_t dst,
                  std::initializer_list<int> payload) {
  Record r;
  r.time_us = t;
  r.src = src;
  r.dst = dst;
  for (int b : payload) r.payload.push_back(static_cast<std::uint8_t>(b));
  return r;
}

void AppendAll(const std::string& path, const std::vector<Record>& records) {
  BinlogWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(path, FsyncPolicy::kNone, &error)) << error;
  for (const Record& r : records) {
    ASSERT_TRUE(writer.Append(r.time_us, r.src, r.dst, r.payload.data(),
                              r.payload.size()));
  }
}

TEST(Crc32Test, KnownVectors) {
  // The standard IEEE check value: CRC32("123456789") == 0xCBF43926.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(digits, sizeof(digits)), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(BinlogTest, RoundTripAndReopenAppends) {
  TempFile file("roundtrip");
  const std::vector<Record> first = {
      MakeRecord(10, 0, 1, {1, 2, 3}),
      MakeRecord(20, 1, 0, {}),
  };
  AppendAll(file.path(), first);
  // Reopening continues the same log (restart semantics).
  AppendAll(file.path(), {MakeRecord(30, 2, 3, {0xff})});

  std::string error;
  const auto result = ReadBinlog(file.path(), &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_TRUE(result->clean);
  ASSERT_EQ(result->records.size(), 3u);
  EXPECT_EQ(result->records[0], first[0]);
  EXPECT_EQ(result->records[1], first[1]);
  EXPECT_EQ(result->records[2].time_us, 30);
  EXPECT_EQ(result->valid_bytes, FileBytes(file.path()).size());
}

TEST(BinlogTest, MissingFileIsErrorEmptyFileIsClean) {
  std::string error;
  EXPECT_FALSE(ReadBinlog(testing::TempDir() + "radar_binlog_nonexistent",
                          &error)
                   .has_value());

  TempFile file("empty");
  WriteFileBytes(file.path(), {});
  const auto result = ReadBinlog(file.path(), &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_TRUE(result->clean);
  EXPECT_TRUE(result->records.empty());
}

TEST(BinlogTest, ResetTruncatesForSpoolDrain) {
  TempFile file("reset");
  BinlogWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(file.path(), FsyncPolicy::kNone, &error)) << error;
  const std::uint8_t b = 7;
  ASSERT_TRUE(writer.Append(1, 0, 1, &b, 1));
  ASSERT_TRUE(writer.Reset());
  ASSERT_TRUE(writer.Append(2, 0, 1, &b, 1));
  writer.Close();

  const auto result = ReadBinlog(file.path(), &error);
  ASSERT_TRUE(result.has_value()) << error;
  ASSERT_EQ(result->records.size(), 1u);
  EXPECT_EQ(result->records[0].time_us, 2);
}

// ---------------------------------------------------------------------
// Torture: truncation at every byte, corruption in every header region.
// ---------------------------------------------------------------------

TEST(BinlogTorture, TruncationAtEveryByteKeepsValidPrefix) {
  TempFile file("truncate");
  const std::vector<Record> records = {
      MakeRecord(10, 0, 1, {1, 2, 3, 4, 5}),
      MakeRecord(20, 1, 2, {6, 7}),
      MakeRecord(30, 2, 3, {8, 9, 10, 11}),
  };
  AppendAll(file.path(), records);
  const auto full = FileBytes(file.path());

  // Record boundaries (byte offsets where a clean file may end).
  std::vector<std::size_t> boundaries = {0};
  for (const Record& r : records) {
    boundaries.push_back(boundaries.back() + kRecordHeaderSize +
                         r.payload.size());
  }
  ASSERT_EQ(boundaries.back(), full.size());

  TempFile cut("truncate_cut");
  for (std::size_t n = 0; n <= full.size(); ++n) {
    WriteFileBytes(cut.path(),
                   std::vector<std::uint8_t>(full.begin(),
                                             full.begin() + static_cast<
                                                 std::ptrdiff_t>(n)));
    std::string error;
    const auto result = ReadBinlog(cut.path(), &error);
    ASSERT_TRUE(result.has_value()) << error << " at " << n;

    // The reader must return every record wholly contained in the prefix
    // and nothing else.
    std::size_t expect_records = 0;
    while (expect_records + 1 < boundaries.size() &&
           boundaries[expect_records + 1] <= n) {
      ++expect_records;
    }
    EXPECT_EQ(result->records.size(), expect_records) << "prefix " << n;
    EXPECT_EQ(result->valid_bytes, boundaries[expect_records])
        << "prefix " << n;
    const bool at_boundary = boundaries[expect_records] == n;
    EXPECT_EQ(result->clean, at_boundary) << "prefix " << n;
    if (!at_boundary) {
      const std::size_t into = n - boundaries[expect_records];
      EXPECT_EQ(result->stop_reason,
                into < kRecordHeaderSize ? "torn-header" : "torn-payload")
          << "prefix " << n;
    }
    for (std::size_t i = 0; i < result->records.size(); ++i) {
      EXPECT_EQ(result->records[i], records[i]);
    }
  }
}

TEST(BinlogTorture, CorruptionStopsAtLastValidRecord) {
  TempFile file("corrupt");
  const std::vector<Record> records = {
      MakeRecord(10, 0, 1, {1, 2, 3}),
      MakeRecord(20, 1, 2, {4, 5, 6}),
  };
  AppendAll(file.path(), records);
  const auto full = FileBytes(file.path());
  const std::size_t second = kRecordHeaderSize + 3;

  struct Case {
    std::size_t offset;      // byte to corrupt, relative to second record
    const char* stop_reason;
  };
  const Case cases[] = {
      {0, "bad-magic"},    // record magic
      {4, "bad-length"},   // payload_len -> implausibly large
      {8, "bad-crc"},      // stored crc
      {32, "bad-crc"},     // payload byte -> crc mismatch
  };
  TempFile dup("corrupt_dup");
  for (const Case& c : cases) {
    auto bytes = full;
    // For the length case, set a value past kMaxRecordPayload.
    if (c.offset == 4) {
      bytes[second + 4] = 0xff;
      bytes[second + 5] = 0xff;
      bytes[second + 6] = 0xff;
      bytes[second + 7] = 0x7f;
    } else {
      bytes[second + c.offset] ^= 0xff;
    }
    WriteFileBytes(dup.path(), bytes);
    std::string error;
    const auto result = ReadBinlog(dup.path(), &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_FALSE(result->clean);
    EXPECT_EQ(result->stop_reason, c.stop_reason);
    ASSERT_EQ(result->records.size(), 1u);
    EXPECT_EQ(result->records[0], records[0]);
    EXPECT_EQ(result->valid_bytes, second);
  }
}

TEST(BinlogTorture, RandomFlipsNeverLoseTheValidPrefix) {
  TempFile file("fuzz");
  std::vector<Record> records;
  Rng rng(77);
  for (int i = 0; i < 8; ++i) {
    Record r;
    r.time_us = i * 100;
    r.src = static_cast<std::int32_t>(rng.NextBounded(4));
    r.dst = static_cast<std::int32_t>(rng.NextBounded(4));
    r.payload.resize(rng.NextBounded(40));
    for (auto& b : r.payload) {
      b = static_cast<std::uint8_t>(rng.NextBounded(256));
    }
    records.push_back(std::move(r));
  }
  AppendAll(file.path(), records);
  const auto full = FileBytes(file.path());

  std::vector<std::size_t> starts = {0};
  for (const Record& r : records) {
    starts.push_back(starts.back() + kRecordHeaderSize + r.payload.size());
  }

  TempFile dup("fuzz_dup");
  for (int iter = 0; iter < 200; ++iter) {
    auto bytes = full;
    const std::size_t at = rng.NextBounded(bytes.size());
    bytes[at] ^= static_cast<std::uint8_t>(rng.NextBounded(255) + 1);
    WriteFileBytes(dup.path(), bytes);
    std::string error;
    const auto result = ReadBinlog(dup.path(), &error);
    ASSERT_TRUE(result.has_value()) << error;

    // Which record holds the flipped byte, and which header region?
    std::size_t hit = 0;
    while (starts[hit + 1] <= at) ++hit;
    const std::size_t into = at - starts[hit];
    // Bytes 12..31 (reserved/time/src/dst) are not covered by the payload
    // CRC: the record still reads, with (at most) altered metadata. Every
    // other region breaks validation and costs the tail from `hit` on.
    const bool metadata_only = into >= 12 && into < kRecordHeaderSize;
    if (metadata_only) {
      EXPECT_TRUE(result->clean) << "iter " << iter;
      ASSERT_EQ(result->records.size(), records.size());
    } else {
      EXPECT_FALSE(result->clean) << "iter " << iter;
      ASSERT_EQ(result->records.size(), hit) << "iter " << iter;
      EXPECT_EQ(result->valid_bytes, starts[hit]);
    }
    // Records before the flip are always returned intact.
    for (std::size_t i = 0; i < hit; ++i) {
      EXPECT_EQ(result->records[i], records[i]) << "iter " << iter;
    }
    if (metadata_only) {
      // The payload itself is still CRC-protected.
      EXPECT_EQ(result->records[hit].payload, records[hit].payload);
      for (std::size_t i = hit + 1; i < records.size(); ++i) {
        EXPECT_EQ(result->records[i], records[i]) << "iter " << iter;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Capture replay.
// ---------------------------------------------------------------------

void AppendFrame(BinlogWriter& writer, std::int64_t t, std::int32_t src,
                 std::uint64_t seq, const wire::Message& msg) {
  const auto bytes = wire::Encode(seq, msg);
  ASSERT_TRUE(writer.Append(t, src, 0, bytes.data(), bytes.size()));
}

TEST(ReplayTest, ExtractsRequestStreamRebasedAndMonotonic) {
  TempFile file("replay");
  {
    BinlogWriter writer;
    std::string error;
    ASSERT_TRUE(writer.Open(file.path(), FsyncPolicy::kNone, &error))
        << error;
    AppendFrame(writer, 1000, 4, 1, wire::Hello{4, wire::PeerRole::kClient});
    AppendFrame(writer, 2000, 4, 2, wire::Request{5, 1});
    AppendFrame(writer, 2500, 1, 3,
                wire::PlacementStat{1, 0.5, 1.0, 4});
    // Out-of-order timestamp (clock skew): must clamp, not reorder.
    AppendFrame(writer, 1500, 4, 4, wire::Request{6, 2});
    AppendFrame(writer, 9000, 4, 5, wire::Request{0, 1});
  }

  CaptureSummary summary;
  std::string error;
  const auto trace = TraceFromCapture(file.path(), 100, &summary, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(summary.records, 5u);
  EXPECT_EQ(summary.requests, 3u);
  EXPECT_EQ(summary.placement_stats, 1u);
  EXPECT_EQ(summary.other, 1u);
  EXPECT_EQ(summary.undecodable, 0u);
  EXPECT_TRUE(summary.clean);

  ASSERT_EQ(trace->size(), 3u);
  const auto& recs = trace->records();
  // First request rebased to start_offset_us.
  EXPECT_EQ(recs[0].t, 100);
  EXPECT_EQ(recs[0].object, 5);
  EXPECT_EQ(recs[0].gateway, 1);
  // The skewed record clamps to its predecessor's time.
  EXPECT_EQ(recs[1].t, 100);
  EXPECT_EQ(recs[1].object, 6);
  // 9000 - 2000 + 100.
  EXPECT_EQ(recs[2].t, 7100);
  EXPECT_EQ(trace->NumObjectsReferenced(), 7);
}

TEST(ReplayTest, TwoReadsYieldIdenticalTraces) {
  TempFile file("replay_det");
  {
    BinlogWriter writer;
    std::string error;
    ASSERT_TRUE(writer.Open(file.path(), FsyncPolicy::kNone, &error))
        << error;
    Rng rng(123);
    for (int i = 0; i < 100; ++i) {
      AppendFrame(writer, i * 500, 4, static_cast<std::uint64_t>(i),
                  wire::Request{static_cast<ObjectId>(rng.NextBounded(10)),
                                static_cast<NodeId>(rng.NextBounded(3))});
    }
  }
  std::string error;
  const auto a = TraceFromCapture(file.path(), 0, nullptr, &error);
  const auto b = TraceFromCapture(file.path(), 0, nullptr, &error);
  ASSERT_TRUE(a.has_value() && b.has_value()) << error;
  ASSERT_EQ(a->size(), b->size());
  EXPECT_EQ(a->records(), b->records());
}

TEST(ReplayTest, TornTailAndForeignPayloadsAreTolerated) {
  TempFile file("replay_torn");
  {
    BinlogWriter writer;
    std::string error;
    ASSERT_TRUE(writer.Open(file.path(), FsyncPolicy::kNone, &error))
        << error;
    AppendFrame(writer, 100, 4, 1, wire::Request{1, 0});
    // A record whose payload is not a wire frame at all (e.g. a WAL op
    // accidentally pointed at the capture): counted undecodable, skipped.
    const std::uint8_t junk[] = {1, 2, 3};
    ASSERT_TRUE(writer.Append(200, 1, 0, junk, sizeof(junk)));
    AppendFrame(writer, 300, 4, 2, wire::Request{2, 0});
  }
  // Tear the file mid-way through the last record.
  auto bytes = FileBytes(file.path());
  bytes.resize(bytes.size() - 5);
  WriteFileBytes(file.path(), bytes);

  CaptureSummary summary;
  std::string error;
  const auto trace = TraceFromCapture(file.path(), 0, &summary, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_FALSE(summary.clean);
  EXPECT_EQ(summary.undecodable, 1u);
  ASSERT_EQ(trace->size(), 1u);
  EXPECT_EQ(trace->records()[0].object, 1);
}

TEST(ReplayTest, MissingCaptureIsError) {
  std::string error;
  EXPECT_FALSE(TraceFromCapture(testing::TempDir() + "radar_no_capture", 0,
                                nullptr, &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace radar::binlog
