// Property tests pinning the sparse GatewayPivotOracle to the dense
// PathLatencyMatrix on randomized graphs:
//  - all-rowed oracles answer every ordered pair bit-identically (the
//    degeneracy the UUNET golden relies on), including min-cross-partition
//    control and seed-centrality ordering;
//  - the equality survives scripted link-fault epochs applied via
//    OnLinkChange, compared against dense state rebuilt over the filtered
//    graph;
//  - with a proper row subset, rowed sources stay exact (class 1), rowed
//    destinations answer with the transposed dense value (class 2), and
//    unrowed pairs return latencies consistent with the real graph path
//    the oracle reports (class 3).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/gateway_pivot.h"
#include "net/graph.h"
#include "net/path_latency.h"
#include "net/routing.h"
#include "sim/transfer.h"

namespace radar::net {
namespace {

constexpr std::int64_t kObjectBytes = 512 * 1024;

/// Connected random graph: a random spanning tree (each node links to a
/// random earlier node) plus `extra` random non-duplicate chords, with
/// randomized delays and bandwidths.
Graph RandomConnectedGraph(std::int32_t n, int extra, Rng& rng) {
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) {
    const auto u = static_cast<NodeId>(rng.NextBounded(static_cast<std::uint64_t>(v)));
    const SimTime delay = MillisToSim(1.0 + 49.0 * rng.NextDouble());
    g.AddLink(u, v, delay, (64.0 + 960.0 * rng.NextDouble()) * 1024.0);
  }
  for (int i = 0; i < extra; ++i) {
    const auto a = static_cast<NodeId>(rng.NextBounded(static_cast<std::uint64_t>(n)));
    const auto b = static_cast<NodeId>(rng.NextBounded(static_cast<std::uint64_t>(n)));
    if (a == b || g.HasLink(a, b)) continue;
    const SimTime delay = MillisToSim(1.0 + 49.0 * rng.NextDouble());
    g.AddLink(a, b, delay, (64.0 + 960.0 * rng.NextDouble()) * 1024.0);
  }
  return g;
}

std::vector<NodeId> AllNodes(std::int32_t n) {
  std::vector<NodeId> nodes(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) nodes[static_cast<std::size_t>(v)] = v;
  return nodes;
}

/// Copy of `g` with the masked-off links omitted, in original link order.
Graph FilteredGraph(const Graph& g, const std::vector<char>& link_up) {
  Graph filtered(g.num_nodes());
  for (std::size_t i = 0; i < g.num_links(); ++i) {
    if (!link_up[i]) continue;
    const Link& link = g.links()[i];
    filtered.AddLink(link.a, link.b, link.delay, link.bandwidth_bps);
  }
  return filtered;
}

void ExpectAllPairsIdentical(const GatewayPivotOracle& sparse,
                             const PathLatencyMatrix& dense,
                             const char* context) {
  ASSERT_EQ(sparse.num_nodes(), dense.num_nodes());
  for (NodeId a = 0; a < sparse.num_nodes(); ++a) {
    for (NodeId b = 0; b < sparse.num_nodes(); ++b) {
      ASSERT_EQ(sparse.Control(a, b), dense.Control(a, b))
          << context << " control (" << a << "," << b << ")";
      ASSERT_EQ(sparse.Transfer(a, b), dense.Transfer(a, b))
          << context << " transfer (" << a << "," << b << ")";
    }
  }
}

TEST(OracleEquivalenceTest, AllRowedMatchesDenseOnRandomGraphs) {
  Rng rng(0xE0u);
  for (const std::int32_t n : {8, 24, 57, 128, 256}) {
    const Graph g = RandomConnectedGraph(n, /*extra=*/n, rng);
    const RoutingTable routing(g);
    const PathLatencyMatrix dense(routing, g, kObjectBytes);
    const GatewayPivotOracle sparse(g, AllNodes(n), kObjectBytes);
    ASSERT_EQ(sparse.num_rows(), static_cast<std::size_t>(n));
    ExpectAllPairsIdentical(sparse, dense, "all-rowed");

    // Row pointers agree element-wise with the dense rows.
    for (NodeId a = 0; a < n; ++a) {
      const SimTime* sparse_row = sparse.ControlRow(a);
      const SimTime* dense_row = dense.ControlRow(a);
      ASSERT_NE(sparse_row, nullptr);
      for (NodeId b = 0; b < n; ++b) {
        ASSERT_EQ(sparse_row[b], dense_row[b]) << "row " << a << " col " << b;
      }
      ASSERT_EQ(sparse.HopDistance(a, (a + 1) % n),
                routing.HopDistance(a, (a + 1) % n));
    }
    EXPECT_EQ(sparse.NodesBySeedCentrality(), routing.NodesByCentrality());
  }
}

TEST(OracleEquivalenceTest, AllRowedMinCrossPartitionMatchesDense) {
  Rng rng(0xE1u);
  const std::int32_t n = 96;
  const Graph g = RandomConnectedGraph(n, n, rng);
  const RoutingTable routing(g);
  const PathLatencyMatrix dense(routing, g, kObjectBytes);
  const GatewayPivotOracle sparse(g, AllNodes(n), kObjectBytes);
  for (const int shards : {1, 2, 3, 5}) {
    std::vector<int> partition(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      partition[static_cast<std::size_t>(v)] =
          static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(shards)));
    }
    EXPECT_EQ(sparse.MinCrossPartitionControl(partition),
              dense.MinCrossPartitionControl(partition))
        << shards << " shards";
  }
}

TEST(OracleEquivalenceTest, AllRowedMatchesDenseAcrossFaultEpochs) {
  Rng rng(0xE2u);
  const std::int32_t n = 48;
  const Graph g = RandomConnectedGraph(n, n, rng);
  GatewayPivotOracle sparse(g, AllNodes(n), kObjectBytes);
  std::vector<char> link_up(g.num_links(), 1);

  // Scripted epochs: six downs (each chosen to keep the masked graph
  // connected) with two restores interleaved. After every event the
  // oracle must match dense state rebuilt over the filtered graph —
  // BuildShortestPathTree's mask guarantee makes these byte-identical.
  std::vector<std::int32_t> downed;
  int events = 0;
  while (events < 8) {
    const bool restore = (events == 3 || events == 6) && !downed.empty();
    std::int32_t link;
    if (restore) {
      link = downed.back();
      downed.pop_back();
      link_up[static_cast<std::size_t>(link)] = 1;
      sparse.OnLinkChange(link, /*up=*/true);
    } else {
      link = static_cast<std::int32_t>(rng.NextBounded(g.num_links()));
      if (!link_up[static_cast<std::size_t>(link)]) continue;
      // Masking must keep every already-down link off as well.
      std::vector<char> candidate = link_up;
      candidate[static_cast<std::size_t>(link)] = 0;
      if (!FilteredGraph(g, candidate).IsConnected()) continue;
      downed.push_back(link);
      link_up[static_cast<std::size_t>(link)] = 0;
      sparse.OnLinkChange(link, /*up=*/false);
    }
    ++events;

    const Graph filtered = FilteredGraph(g, link_up);
    const RoutingTable routing(filtered);
    const PathLatencyMatrix dense(routing, filtered, kObjectBytes);
    ExpectAllPairsIdentical(sparse, dense, "epoch");
  }
  EXPECT_GT(sparse.rows_rebuilt(), 0);

  // Restoring everything returns the oracle to the fault-free answers.
  while (!downed.empty()) {
    sparse.OnLinkChange(downed.back(), /*up=*/true);
    downed.pop_back();
  }
  const RoutingTable routing(g);
  const PathLatencyMatrix dense(routing, g, kObjectBytes);
  ExpectAllPairsIdentical(sparse, dense, "restored");
}

TEST(OracleEquivalenceTest, RowSubsetAnswerClasses) {
  Rng rng(0xE3u);
  const std::int32_t n = 80;
  const Graph g = RandomConnectedGraph(n, n, rng);
  const RoutingTable routing(g);
  const PathLatencyMatrix dense(routing, g, kObjectBytes);

  // Every fifth node is rowed; the rest answer via transpose or pivot.
  std::vector<NodeId> rows;
  for (NodeId v = 0; v < n; v += 5) rows.push_back(v);
  const GatewayPivotOracle sparse(g, rows, kObjectBytes);
  ASSERT_EQ(sparse.num_rows(), rows.size());

  std::vector<NodeId> path;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (sparse.HasRow(a)) {
        // Class 1: the rowed source is bit-identical to dense.
        ASSERT_EQ(sparse.Control(a, b), dense.Control(a, b));
        ASSERT_EQ(sparse.Transfer(a, b), dense.Transfer(a, b));
        continue;
      }
      if (sparse.HasRow(b)) {
        // Class 2: answered from b's tree, so it transposes exactly.
        ASSERT_EQ(sparse.Control(a, b), dense.Control(b, a));
        ASSERT_EQ(sparse.Transfer(a, b), dense.Transfer(b, a));
        continue;
      }
      // Class 3: a real route through a's pivot tree. The reported path
      // must exist edge-by-edge in the graph, and both latencies must be
      // the per-link truncate-then-sum totals of exactly that path.
      path.clear();
      sparse.AppendPath(a, b, &path);
      ASSERT_GE(path.size(), 1u);
      ASSERT_EQ(path.front(), a);
      ASSERT_EQ(path.back(), b);
      ASSERT_EQ(static_cast<std::int32_t>(path.size()) - 1,
                sparse.HopDistance(a, b));
      SimTime control = 0;
      SimTime transfer = 0;
      for (std::size_t i = 1; i < path.size(); ++i) {
        ASSERT_TRUE(g.HasLink(path[i - 1], path[i]))
            << "hop " << path[i - 1] << "->" << path[i];
        for (const Edge& e : g.Neighbors(path[i - 1])) {
          if (e.to != path[i]) continue;
          control += e.delay;
          transfer +=
              e.delay + sim::SerializationTime(kObjectBytes, e.bandwidth_bps);
          break;
        }
      }
      ASSERT_EQ(sparse.Control(a, b), control) << a << "," << b;
      ASSERT_EQ(sparse.Transfer(a, b), transfer) << a << "," << b;
      // Never shorter than the true shortest path.
      ASSERT_GE(sparse.HopDistance(a, b), routing.HopDistance(a, b));
    }
  }
}

TEST(OracleEquivalenceTest, AddRowSourcesPromotesToExact) {
  Rng rng(0xE4u);
  const std::int32_t n = 40;
  const Graph g = RandomConnectedGraph(n, n / 2, rng);
  const RoutingTable routing(g);
  const PathLatencyMatrix dense(routing, g, kObjectBytes);

  GatewayPivotOracle sparse(g, {0, 1}, kObjectBytes);
  ASSERT_FALSE(sparse.HasRow(17));
  sparse.AddRowSources({17, 17, 23});
  ASSERT_TRUE(sparse.HasRow(17));
  ASSERT_TRUE(sparse.HasRow(23));
  EXPECT_EQ(sparse.num_rows(), 4u);
  for (NodeId b = 0; b < n; ++b) {
    EXPECT_EQ(sparse.Control(17, b), dense.Control(17, b));
    EXPECT_EQ(sparse.Transfer(23, b), dense.Transfer(23, b));
  }
}

}  // namespace
}  // namespace radar::net
