// Tests for the real-mode wire codec (wire/codec.h): golden byte-exact
// frames pin the v1 layout, property tests round-trip every message type
// over randomized fields, and rejection tests walk every malformed-input
// class (truncation at each byte, bad magic/version/type/length, payload
// range violations, random garbage). The whole file runs under the
// sanitizer CI job, so "no fuzzed input reaches UB" is machine-checked.
#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"
#include "wire/codec.h"
#include "wire/frame.h"

namespace radar::wire {
namespace {

std::vector<std::uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

// ---------------------------------------------------------------------
// Golden fixtures: the exact bytes of version-1 frames. If any of these
// change, the protocol version must be bumped — old captures and spools
// would otherwise decode differently (or not at all).
// ---------------------------------------------------------------------

TEST(WireGolden, RequestFrameBytes) {
  const auto encoded = Encode(0x0102030405060708ull, Request{7, 3});
  const auto expected = Bytes({
      0x52, 0x61, 0x44, 0x52,                          // magic "RaDR"
      0x01, 0x00,                                      // version 1
      0x02, 0x00,                                      // type kRequest
      0x08, 0x00, 0x00, 0x00,                          // len 8
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // seq
      0x07, 0x00, 0x00, 0x00,                          // object 7
      0x03, 0x00, 0x00, 0x00,                          // gateway 3
  });
  EXPECT_EQ(encoded, expected);
}

TEST(WireGolden, HelloFrameBytes) {
  const auto encoded = Encode(1, Hello{5, PeerRole::kRedirector});
  const auto expected = Bytes({
      0x52, 0x61, 0x44, 0x52, 0x01, 0x00, 0x01, 0x00,
      0x05, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00,
      0x05, 0x00, 0x00, 0x00,  // node 5
      0x01,                    // role redirector
  });
  EXPECT_EQ(encoded, expected);
}

TEST(WireGolden, MigrateCarriesDoubleAsBitPattern) {
  // 1.5 == 0x3FF8000000000000: the payload must hold exactly those bytes.
  const auto encoded = Encode(2, Migrate{9, 1, 2, 1.5});
  ASSERT_EQ(encoded.size(), kHeaderSize + 20);
  const auto tail = Bytes({0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf8, 0x3f});
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(), encoded.end() - 8));
}

TEST(WireGolden, ShutdownIsHeaderOnly) {
  const auto encoded = Encode(0, Shutdown{});
  EXPECT_EQ(encoded.size(), kHeaderSize);
}

TEST(WireGolden, RedirectNoReplicaUsesInvalidNode) {
  // kInvalidNode (-1) must survive the u32 wire representation.
  const auto encoded = Encode(3, Redirect{4, kInvalidNode});
  const auto result = DecodeFrame(encoded.data(), encoded.size());
  ASSERT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_EQ(std::get<Redirect>(result.frame.msg).host, kInvalidNode);
}

TEST(WireGolden, PayloadSizesArePinned) {
  EXPECT_EQ(PayloadSize(MsgType::kHello), 5u);
  EXPECT_EQ(PayloadSize(MsgType::kRequest), 8u);
  EXPECT_EQ(PayloadSize(MsgType::kRedirect), 8u);
  EXPECT_EQ(PayloadSize(MsgType::kReplicate), 20u);
  EXPECT_EQ(PayloadSize(MsgType::kMigrate), 20u);
  EXPECT_EQ(PayloadSize(MsgType::kAck), 10u);
  EXPECT_EQ(PayloadSize(MsgType::kPlacementStat), 24u);
  EXPECT_EQ(PayloadSize(MsgType::kAnnounce), 12u);
  EXPECT_EQ(PayloadSize(MsgType::kShutdown), 0u);
}

// ---------------------------------------------------------------------
// Round-trip properties over randomized fields.
// ---------------------------------------------------------------------

void ExpectRoundTrip(std::uint64_t seq, const Message& msg) {
  const auto bytes = Encode(seq, msg);
  EXPECT_EQ(bytes.size(), kHeaderSize + PayloadSize(TypeOf(msg)));
  const auto result = DecodeFrame(bytes.data(), bytes.size());
  ASSERT_EQ(result.status, DecodeStatus::kOk)
      << DecodeStatusName(result.status) << " for "
      << MsgTypeName(TypeOf(msg));
  EXPECT_EQ(result.consumed, bytes.size());
  EXPECT_EQ(result.frame.seq, seq);
  EXPECT_EQ(result.frame.msg, msg);
}

TEST(WireRoundTrip, AllTypesRandomizedFields) {
  Rng rng(20260809);
  for (int iter = 0; iter < 400; ++iter) {
    const std::uint64_t seq = rng.NextU64();
    const auto node = [&rng] {
      // Mix valid ids with kInvalidNode (the no-replica sentinel).
      return rng.NextBool(0.1)
                 ? kInvalidNode
                 : static_cast<NodeId>(rng.NextBounded(1u << 20));
    };
    const auto object = [&rng] {
      return static_cast<ObjectId>(rng.NextBounded(1u << 24));
    };
    const auto load = [&rng] { return rng.NextDouble() * 1e6; };
    ExpectRoundTrip(seq, Hello{node(), static_cast<PeerRole>(
                                           rng.NextBounded(3))});
    ExpectRoundTrip(seq, Request{object(), node()});
    ExpectRoundTrip(seq, Redirect{object(), node()});
    ExpectRoundTrip(seq, Replicate{object(), node(), node(), load()});
    ExpectRoundTrip(seq, Migrate{object(), node(), node(), load()});
    ExpectRoundTrip(seq, Ack{rng.NextU64(), rng.NextBool(0.5),
                             rng.NextBool(0.5)});
    ExpectRoundTrip(seq, PlacementStat{node(), load(), rng.NextDouble() * 8,
                                       static_cast<std::uint32_t>(
                                           rng.NextBounded(1u << 16))});
    ExpectRoundTrip(seq, Announce{object(), node(),
                                  static_cast<std::int32_t>(
                                      rng.NextBounded(100) + 1)});
    ExpectRoundTrip(seq, Shutdown{});
  }
}

TEST(WireRoundTrip, DoubleBitPatternsSurviveExactly) {
  // Doubles travel as bit patterns, so even non-finite values and -0.0
  // must round-trip bit-exact.
  for (double v : {0.0, -0.0, 1.0 / 3.0, 1e308, -1e-308,
                   std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::denorm_min()}) {
    ExpectRoundTrip(1, Replicate{1, 2, 3, v});
    ExpectRoundTrip(1, PlacementStat{1, v, v, 0});
  }
}

TEST(WireRoundTrip, EncodeAppendConcatenatesDecodableStream) {
  // The transport appends many frames into one output buffer; decoding
  // must walk the stream frame by frame.
  std::vector<std::uint8_t> stream;
  EncodeAppend(stream, 1, Request{1, 0});
  EncodeAppend(stream, 2, Shutdown{});
  EncodeAppend(stream, 3, Ack{1, true, false});

  std::size_t offset = 0;
  std::vector<std::uint64_t> seqs;
  while (offset < stream.size()) {
    const auto result =
        DecodeFrame(stream.data() + offset, stream.size() - offset);
    ASSERT_EQ(result.status, DecodeStatus::kOk);
    seqs.push_back(result.frame.seq);
    offset += result.consumed;
  }
  EXPECT_EQ(offset, stream.size());
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3}));
}

// ---------------------------------------------------------------------
// Rejection: every malformed-input class maps to its DecodeStatus, and
// errors never consume bytes.
// ---------------------------------------------------------------------

TEST(WireReject, TruncatedPrefixesAtEveryLength) {
  const auto frame = Encode(42, PlacementStat{1, 2.0, 1.0, 3});
  for (std::size_t n = 0; n < frame.size(); ++n) {
    const auto result = DecodeFrame(frame.data(), n);
    EXPECT_EQ(result.status, DecodeStatus::kNeedMore) << "prefix " << n;
    EXPECT_EQ(result.consumed, 0u);
  }
}

TEST(WireReject, BadMagicDetectedFromFirstByte) {
  auto frame = Encode(1, Shutdown{});
  for (std::size_t i = 0; i < 4; ++i) {
    auto corrupt = frame;
    corrupt[i] ^= 0xff;
    // Even a 1-byte prefix of garbage is rejected immediately.
    for (std::size_t n = i + 1; n <= corrupt.size(); ++n) {
      const auto result = DecodeFrame(corrupt.data(), n);
      EXPECT_EQ(result.status, DecodeStatus::kBadMagic);
      EXPECT_EQ(result.consumed, 0u);
    }
  }
}

TEST(WireReject, WrongVersion) {
  auto frame = Encode(1, Request{1, 2});
  frame[4] = 2;  // version 2
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).status,
            DecodeStatus::kBadVersion);
  // Detected as soon as the version field is present.
  EXPECT_EQ(DecodeFrame(frame.data(), 6).status, DecodeStatus::kBadVersion);
}

TEST(WireReject, OversizedLenRejectedBeforeBuffering) {
  auto frame = Encode(1, Request{1, 2});
  const std::uint32_t huge = kMaxPayload + 1;
  for (int i = 0; i < 4; ++i) {
    frame[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((huge >> (8 * i)) & 0xff);
  }
  // Only the header is needed to reject: no kNeedMore stall waiting for a
  // gigabyte that will never arrive.
  const auto result = DecodeFrame(frame.data(), kHeaderSize);
  EXPECT_EQ(result.status, DecodeStatus::kBadLength);
  EXPECT_EQ(result.consumed, 0u);
}

TEST(WireReject, UnknownType) {
  auto frame = Encode(1, Shutdown{});
  frame[6] = 0;  // type 0 (below kHello)
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).status,
            DecodeStatus::kBadType);
  frame[6] = 10;  // above kShutdown
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).status,
            DecodeStatus::kBadType);
}

TEST(WireReject, LenMismatchForType) {
  // A Request header claiming a Shutdown-sized payload (and vice versa).
  auto frame = Encode(1, Request{1, 2});
  frame[8] = 0;  // len 0
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireReject, PayloadRangeViolations) {
  // Hello role byte out of range.
  auto hello = Encode(1, Hello{1, PeerRole::kClient});
  hello[kHeaderSize + 4] = 3;
  EXPECT_EQ(DecodeFrame(hello.data(), hello.size()).status,
            DecodeStatus::kBadPayload);
  // Ack flag bytes must be 0/1.
  auto ack = Encode(1, Ack{1, true, true});
  ack[kHeaderSize + 8] = 2;
  EXPECT_EQ(DecodeFrame(ack.data(), ack.size()).status,
            DecodeStatus::kBadPayload);
}

TEST(WireReject, RandomGarbageNeverCrashes) {
  // Fuzz pass: decode random buffers (and random corruptions of valid
  // frames). Under ASan/UBSan this proves no input reaches UB; statuses
  // just have to be *some* defined value, with consumed 0 on errors.
  Rng rng(0xfadedbee);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> buf(rng.NextBounded(64));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.NextBounded(256));
    const auto result = DecodeFrame(buf.data(), buf.size());
    if (result.status != DecodeStatus::kOk) {
      EXPECT_EQ(result.consumed, 0u);
    }
  }
  for (int iter = 0; iter < 2000; ++iter) {
    auto frame = Encode(rng.NextU64(),
                        Replicate{1, 2, 3, rng.NextDouble()});
    const std::size_t at = rng.NextBounded(frame.size());
    frame[at] ^= static_cast<std::uint8_t>(rng.NextBounded(255) + 1);
    const auto result = DecodeFrame(frame.data(), frame.size());
    if (result.status != DecodeStatus::kOk) {
      EXPECT_EQ(result.consumed, 0u);
    } else {
      EXPECT_EQ(result.consumed, frame.size());
    }
  }
}

}  // namespace
}  // namespace radar::wire
