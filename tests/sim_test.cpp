// Unit tests for the discrete-event engine: event queue ordering, the
// simulator clock, periodic tasks, the FCFS server model, and the
// store-and-forward transfer model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/fcfs_server.h"
#include "sim/simulator.h"
#include "sim/transfer.h"

namespace radar::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&] { order.push_back(3); });
  q.Push(10, [&] { order.push_back(1); });
  q.Push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.Push(42, [] {});
  q.Push(7, [] {});
  EXPECT_EQ(q.NextTime(), 7);
  EXPECT_EQ(q.size(), 2u);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.Schedule(100, [&] { seen = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorTest, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(50, [&] { ++fired; });
  sim.Schedule(150, [&] { ++fired; });
  sim.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsScheduledExactlyAtHorizonRun) {
  Simulator sim;
  bool fired = false;
  sim.Schedule(100, [&] { fired = true; });
  sim.RunUntil(100);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.Now());
    sim.Schedule(5, [&] { times.push_back(sim.Now()); });
  });
  sim.RunAll();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, PeriodicFiresAtFixedCadence) {
  Simulator sim;
  std::vector<SimTime> fires;
  sim.SchedulePeriodic(100, 100, [&](SimTime t) { fires.push_back(t); });
  sim.RunUntil(450);
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 200, 300, 400}));
}

TEST(SimulatorTest, PeriodicStopsAtHorizon) {
  Simulator sim;
  int fires = 0;
  sim.SchedulePeriodic(10, 10, [&](SimTime) { ++fires; });
  sim.RunUntil(55);
  EXPECT_EQ(fires, 5);
  // A later horizon resumes the cadence.
  sim.RunUntil(100);
  EXPECT_EQ(fires, 10);
}

TEST(SimulatorTest, TwoPeriodicsInterleave) {
  Simulator sim;
  std::vector<int> order;
  sim.SchedulePeriodic(10, 20, [&](SimTime) { order.push_back(1); });
  sim.SchedulePeriodic(20, 20, [&](SimTime) { order.push_back(2); });
  sim.RunUntil(60);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(SimulatorTest, StreamFiresAtArmedTimesAndInterleavesWithEvents) {
  Simulator sim;
  std::vector<int> order;
  std::vector<SimTime> stream_times;
  std::uint32_t id = 0;
  id = sim.AddStream([&] {
    // Self-re-arming cadence of 20 starting at 10, reading the clock for
    // the firing time (stream closures take no arguments).
    stream_times.push_back(sim.Now());
    order.push_back(1);
    sim.ArmStream(id, sim.Now() + 20);
  });
  sim.ArmStream(id, 10);
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Schedule(45, [&] { order.push_back(3); });
  sim.RunUntil(60);
  EXPECT_EQ(stream_times, (std::vector<SimTime>{10, 30, 50}));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 3, 1}));
}

TEST(SimulatorTest, StreamEqualTimeTieBreaksByArmOrder) {
  // A stream armed *before* an equal-time Schedule fires first; armed
  // *after*, it fires second — arming reserves a place in the global
  // sequence exactly like a push.
  for (const bool arm_first : {true, false}) {
    Simulator sim;
    std::vector<int> order;
    const std::uint32_t id = sim.AddStream([&] { order.push_back(1); });
    if (arm_first) sim.ArmStream(id, 40);
    sim.Schedule(40, [&] { order.push_back(2); });
    if (!arm_first) sim.ArmStream(id, 40);
    sim.RunUntil(100);
    EXPECT_EQ(order, arm_first ? (std::vector<int>{1, 2})
                               : (std::vector<int>{2, 1}));
  }
}

TEST(SimulatorTest, StreamWaitsPastHorizonLikeAnyEvent) {
  Simulator sim;
  int fires = 0;
  std::uint32_t id = 0;
  id = sim.AddStream([&] {
    ++fires;
    sim.ArmStream(id, sim.Now() + 10);
  });
  sim.ArmStream(id, 10);
  sim.RunUntil(35);
  EXPECT_EQ(fires, 3);
  // The next armed firing (40) survives the horizon and resumes later,
  // even though the slab queue itself is empty.
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.RunUntil(100);
  EXPECT_EQ(fires, 10);
}

TEST(SimulatorTest, TwoStreamsInterleaveByTimeAndArmOrder) {
  Simulator sim;
  std::vector<int> order;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  a = sim.AddStream([&] {
    order.push_back(1);
    sim.ArmStream(a, sim.Now() + 20);
  });
  b = sim.AddStream([&] {
    order.push_back(2);
    sim.ArmStream(b, sim.Now() + 20);
  });
  sim.ArmStream(a, 10);
  sim.ArmStream(b, 20);
  sim.RunUntil(60);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(FcfsServerTest, ServiceTimeFromCapacity) {
  FcfsServer server(200.0);  // Table 1: 200 req/s -> 5 ms
  EXPECT_EQ(server.service_time(), MillisToSim(5.0));
}

TEST(FcfsServerTest, IdleServerCompletesAfterOneServiceTime) {
  FcfsServer server(100.0);
  const SimTime done = server.Admit(SecondsToSim(1.0));
  EXPECT_EQ(done, SecondsToSim(1.0) + MillisToSim(10.0));
}

TEST(FcfsServerTest, BackToBackArrivalsQueue) {
  FcfsServer server(100.0);  // 10 ms service
  const SimTime t = SecondsToSim(1.0);
  EXPECT_EQ(server.Admit(t), t + MillisToSim(10.0));
  EXPECT_EQ(server.Admit(t), t + MillisToSim(20.0));
  EXPECT_EQ(server.Admit(t), t + MillisToSim(30.0));
  EXPECT_EQ(server.admitted(), 3);
}

TEST(FcfsServerTest, GapDrainsQueue) {
  FcfsServer server(100.0);
  server.Admit(0);
  server.Admit(0);  // busy until 20 ms
  EXPECT_EQ(server.BacklogAt(MillisToSim(5.0)), MillisToSim(15.0));
  // Arrival after the queue drained starts fresh.
  const SimTime done = server.Admit(MillisToSim(100.0));
  EXPECT_EQ(done, MillisToSim(110.0));
  EXPECT_EQ(server.BacklogAt(MillisToSim(200.0)), 0);
}

TEST(FcfsServerTest, OverloadGrowsUnbounded) {
  // Sustained arrivals above capacity back the queue up linearly — the
  // hot-sites workload's initial tens-of-seconds latencies rely on this.
  FcfsServer server(100.0);
  SimTime last_arrival = 0;
  for (int i = 0; i < 1000; ++i) {
    last_arrival = static_cast<SimTime>(i) * MillisToSim(5.0);
    server.Admit(last_arrival);
  }
  // 1000 requests x 10 ms service vs 5 ms spacing: ~5 s of backlog at the
  // time the last request arrives.
  EXPECT_GT(server.BacklogAt(last_arrival), SecondsToSim(4.0));
}

TEST(FcfsServerTest, ResetForgetsBacklog) {
  FcfsServer server(100.0);
  server.Admit(0);
  server.Reset();
  EXPECT_EQ(server.admitted(), 0);
  EXPECT_EQ(server.Admit(0), MillisToSim(10.0));
}

TEST(FcfsServerDeathTest, TimeMustNotGoBackwards) {
  FcfsServer server(100.0);
  server.Admit(MillisToSim(10.0));
  EXPECT_DEATH(server.Admit(MillisToSim(5.0)), "RADAR_CHECK");
}

TEST(TransferTest, SerializationTimeMatchesTable1) {
  // 12 KB at 350 KBps: 12/350 s = ~34.3 ms.
  const SimTime t = SerializationTime(12 * 1024, 350.0 * 1024.0);
  EXPECT_NEAR(SimToSeconds(t), 12.0 / 350.0, 1e-6);
}

TEST(TransferTest, StoreAndForwardScalesWithHops) {
  const SimTime per_hop = MillisToSim(10.0);
  const double bw = 350.0 * 1024.0;
  const SimTime one = TransferTime(1, 12 * 1024, per_hop, bw);
  const SimTime three = TransferTime(3, 12 * 1024, per_hop, bw);
  EXPECT_EQ(three, 3 * one);
  EXPECT_EQ(TransferTime(0, 12 * 1024, per_hop, bw), 0);
}

TEST(TransferTest, ControlLatencyIsPropagationOnly) {
  EXPECT_EQ(ControlLatency(4, MillisToSim(10.0)), MillisToSim(40.0));
  EXPECT_EQ(ControlLatency(0, MillisToSim(10.0)), 0);
}

}  // namespace
}  // namespace radar::sim
