// Hand-computed checks of the driver's latency and bandwidth model
// (Sec. 6.1: 10 ms per hop, store-and-forward serialization at link
// bandwidth, FCFS service at fixed capacity, negligible request size).
#include <gtest/gtest.h>

#include "driver/hosting_simulation.h"
#include "sim/transfer.h"

namespace radar::driver {
namespace {

// Two nodes, one 10 ms / 350 KBps link. Only "a" takes client requests;
// the single object lives on "b", so every request crosses the link.
net::Topology TwoNodeTopology() {
  net::TopologyBuilder b;
  b.AddNode("a", net::Region::kEurope, /*is_gateway=*/true);
  b.AddNode("b", net::Region::kEurope, /*is_gateway=*/false);
  b.Link("a", "b", MillisToSim(10.0), 350.0 * 1024.0);
  return std::move(b).Build();
}

SimConfig TwoNodeConfig() {
  SimConfig config;
  config.num_objects = 1;
  config.initial_home = [](ObjectId) { return NodeId{1}; };
  config.node_request_rate = 1.0;  // far below capacity: no queueing
  config.server_capacity = 200.0;  // 5 ms service time
  config.duration = SecondsToSim(10.0);
  config.workload = WorkloadKind::kUniform;
  return config;
}

TEST(SimulationModelTest, SingleRequestLatencyIsExact) {
  HostingSimulation sim(TwoNodeConfig(), TwoNodeTopology());
  // The redirector sits at the most central node; with two nodes the tie
  // breaks to node 0 (the gateway itself).
  ASSERT_EQ(sim.redirector_home(0), 0);
  const RunReport report = sim.Run();

  // Request path: gateway a -> redirector a (0 hops) -> host b (1 hop,
  // propagation only) = 10 ms. Service: 5 ms. Response b -> a: 10 ms
  // propagation + 12 KB / 350 KBps serialization.
  const SimTime serialization =
      sim::SerializationTime(12 * 1024, 350.0 * 1024.0);
  const double expected = SimToSeconds(
      MillisToSim(10.0) + MillisToSim(5.0) + MillisToSim(10.0) +
      serialization);
  ASSERT_GT(report.total_requests, 0);
  EXPECT_NEAR(report.latency_stats.mean(), expected, 1e-9);
  EXPECT_NEAR(report.latency_stats.min(), report.latency_stats.max(), 1e-9);
}

TEST(SimulationModelTest, BandwidthIsBytesTimesHops) {
  HostingSimulation sim(TwoNodeConfig(), TwoNodeTopology());
  const RunReport report = sim.Run();
  // One hop per response, no relocations possible (nothing to improve
  // and only one candidate below... placement may try: the object cannot
  // be dropped as sole replica; migration to the gateway is possible).
  EXPECT_EQ(report.traffic.total_payload() + report.traffic.total_overhead(),
            sim.link_stats().total_byte_hops());
  EXPECT_GE(report.traffic.total_payload(),
            (report.total_requests - report.TotalRelocations()) * 12 * 1024 -
                12 * 1024);
}

TEST(SimulationModelTest, QueueingDelayAppearsAboveCapacity) {
  // Demand 2x capacity: with FCFS the k-th request waits (k-1) * (s - a)
  // where s = service time and a = inter-arrival gap; latency grows
  // linearly through the run.
  SimConfig config = TwoNodeConfig();
  config.node_request_rate = 40.0;
  config.server_capacity = 20.0;  // 50 ms service vs 25 ms arrivals
  config.placement = baselines::PlacementPolicy::kStatic;  // keep it queued
  HostingSimulation sim(config, TwoNodeTopology());
  const RunReport report = sim.Run();
  // After 10 s: ~400 arrivals, ~200 serviced; the last serviced request
  // waited ~ 200 * 25 ms = 5 s.
  EXPECT_GT(report.latency_stats.max(), 4.0);
  EXPECT_LT(report.latency_stats.min(), 0.2);
}

TEST(SimulationModelTest, GeoMigrationPullsObjectToDemand) {
  // All demand enters at a; the object starts at b. With placement on,
  // the 100%-fraction gateway qualifies for geo-migration and the object
  // moves to a, zeroing backbone traffic afterwards.
  SimConfig config = TwoNodeConfig();
  config.duration = SecondsToSim(400.0);
  // Raise the rate so the access counts clear the deletion threshold.
  config.node_request_rate = 2.0;
  HostingSimulation sim(config, TwoNodeTopology());
  const RunReport report = sim.Run();
  EXPECT_GE(report.geo_migrations, 1);
  EXPECT_TRUE(sim.cluster().host(0).HasObject(0));
  EXPECT_FALSE(sim.cluster().host(1).HasObject(0));
  // Traffic after the migration is local (zero hops): the payload series
  // stops growing once the object moves — no samples land in the buckets
  // covering the final minutes of the 400 s run.
  const auto& payload = report.traffic.payload();
  EXPECT_LE(payload.num_buckets(),
            4u);  // migration happens during bucket 2 (~167 s)
}

TEST(SimulationModelTest, ControlLatencyAddsRedirectorDetour) {
  // Three-node line a - r - b with the redirector in the middle: the
  // detour a->r->b only adds propagation, no serialization.
  net::TopologyBuilder builder;
  builder.AddNode("a", net::Region::kEurope, true);
  builder.AddNode("r", net::Region::kEurope, false);
  builder.AddNode("b", net::Region::kEurope, false);
  builder.Link("a", "r", MillisToSim(10.0), 350.0 * 1024.0);
  builder.Link("r", "b", MillisToSim(10.0), 350.0 * 1024.0);

  SimConfig config = TwoNodeConfig();
  config.initial_home = [](ObjectId) { return NodeId{2}; };
  HostingSimulation sim(config, std::move(builder).Build());
  ASSERT_EQ(sim.redirector_home(0), 1);  // most central: the middle node
  const RunReport report = sim.Run();

  // gateway->redirector 10 ms, redirector->host 10 ms, service 5 ms,
  // response 2 hops x (10 ms + serialization).
  const SimTime serialization =
      sim::SerializationTime(12 * 1024, 350.0 * 1024.0);
  const double expected =
      SimToSeconds(MillisToSim(10.0) + MillisToSim(10.0) +
                   MillisToSim(5.0) + 2 * (MillisToSim(10.0) + serialization));
  ASSERT_GT(report.total_requests, 0);
  EXPECT_NEAR(report.latency_stats.mean(), expected, 1e-9);
}

}  // namespace
}  // namespace radar::driver
