// End-to-end integration tests: the qualitative claims of Sec. 6.2 on a
// dynamically equivalent 1/10-scale version of the paper's experiments
// (see test_config.h — all rates scale together, so per-object load
// relative to the watermarks matches the paper's setup).
#include <gtest/gtest.h>

#include <memory>

#include "driver/hosting_simulation.h"
#include "test_config.h"

namespace radar::driver {
namespace {

using testing::ScaledPaperConfig;

SimConfig BaseConfig() {
  SimConfig config = ScaledPaperConfig();
  config.duration = SecondsToSim(2400.0);
  config.seed = 3;
  return config;
}

TEST(IntegrationTest, ZipfBandwidthDropsSubstantially) {
  SimConfig config = BaseConfig();
  config.workload = WorkloadKind::kZipf;
  const RunReport report = HostingSimulation(config).Run();
  // Paper: ~60% bandwidth reduction, ~20% latency reduction at equilibrium.
  EXPECT_GT(report.BandwidthReductionPercent(), 40.0);
  EXPECT_GT(report.LatencyReductionPercent(), 10.0);
}

TEST(IntegrationTest, RegionalBandwidthDropsMost) {
  SimConfig regional = BaseConfig();
  regional.workload = WorkloadKind::kRegional;
  SimConfig zipf = BaseConfig();
  zipf.workload = WorkloadKind::kZipf;
  const RunReport regional_report = HostingSimulation(regional).Run();
  const RunReport zipf_report = HostingSimulation(zipf).Run();
  // "as much as 90.1% for the regional workload": regional locality beats
  // the globally-popular workloads by a wide margin.
  EXPECT_GT(regional_report.BandwidthReductionPercent(), 70.0);
  EXPECT_GT(regional_report.BandwidthReductionPercent(),
            zipf_report.BandwidthReductionPercent());
}

TEST(IntegrationTest, HotSitesHotSpotsEliminated) {
  SimConfig config = BaseConfig();
  config.duration = SecondsToSim(4500.0);  // overload drains, then settles
  config.workload = WorkloadKind::kHotSites;
  const RunReport report = HostingSimulation(config).Run();
  // Initially a few sites melt down (queues, huge latency); at equilibrium
  // the max load sits below the high watermark and latency has collapsed
  // (Fig. 8a / Sec. 6.2).
  const std::size_t n = report.max_load.num_buckets();
  ASSERT_GT(n, 10u);
  const double late_max = report.max_load.MaxOver(n - 4, n - 2);
  EXPECT_LT(late_max, config.protocol.high_watermark * 1.05);
  EXPECT_GT(report.InitialLatency(4), 1.0);         // melted down at start
  EXPECT_LT(report.EquilibriumLatency(), 1.0);      // healthy at the end
}

TEST(IntegrationTest, HotSitesAndHotPagesConvergeToSimilarBandwidth) {
  // "The equilibrium bandwidth consumption for both the cases is the same"
  // — placement is driven by access patterns, not initial configuration.
  SimConfig sites = BaseConfig();
  sites.duration = SecondsToSim(4500.0);
  sites.workload = WorkloadKind::kHotSites;
  SimConfig pages = BaseConfig();
  pages.duration = SecondsToSim(4500.0);
  pages.workload = WorkloadKind::kHotPages;
  const RunReport sites_report = HostingSimulation(sites).Run();
  const RunReport pages_report = HostingSimulation(pages).Run();
  const double a = sites_report.EquilibriumBandwidthRate();
  const double b = pages_report.EquilibriumBandwidthRate();
  EXPECT_LT(std::abs(a - b) / std::max(a, b), 0.30);
}

TEST(IntegrationTest, OverheadStaysSmall) {
  for (const WorkloadKind kind :
       {WorkloadKind::kZipf, WorkloadKind::kHotPages,
        WorkloadKind::kRegional}) {
    SimConfig config = BaseConfig();
    config.duration = SecondsToSim(1500.0);
    config.workload = kind;
    const RunReport report = HostingSimulation(config).Run();
    // Fig. 7: "always below 2.5% of total traffic". Allow headroom for the
    // short scaled-down runs where startup copying weighs more.
    EXPECT_LT(report.traffic.OverheadPercent(), 4.0)
        << WorkloadKindName(kind);
  }
}

TEST(IntegrationTest, FewExtraReplicas) {
  // Table 2: 1.49-2.62 average replicas across workloads on 53 nodes.
  for (const WorkloadKind kind :
       {WorkloadKind::kZipf, WorkloadKind::kRegional}) {
    SimConfig config = BaseConfig();
    config.duration = SecondsToSim(1500.0);
    config.workload = kind;
    const RunReport report = HostingSimulation(config).Run();
    EXPECT_GT(report.final_avg_replicas, 1.0) << WorkloadKindName(kind);
    EXPECT_LT(report.final_avg_replicas, 5.0) << WorkloadKindName(kind);
  }
}

TEST(IntegrationTest, LoadEstimatesBracketActualLoad) {
  // Fig. 8b: the actual load lies between the high and low estimates.
  SimConfig config = BaseConfig();
  config.duration = SecondsToSim(1500.0);
  config.workload = WorkloadKind::kHotPages;
  config.tracked_host = 10;
  const RunReport report = HostingSimulation(config).Run();
  ASSERT_FALSE(report.tracked_host_loads.empty());
  for (const auto& sample : report.tracked_host_loads) {
    EXPECT_LE(sample.measured, sample.upper_estimate + 1e-9);
    EXPECT_GE(sample.measured, sample.lower_estimate - 1e-9);
  }
}

TEST(IntegrationTest, DynamicBeatsStaticOnBandwidth) {
  SimConfig dynamic_config = BaseConfig();
  dynamic_config.workload = WorkloadKind::kRegional;
  SimConfig static_config = dynamic_config;
  static_config.placement = baselines::PlacementPolicy::kStatic;
  const RunReport dynamic_report = HostingSimulation(dynamic_config).Run();
  const RunReport static_report = HostingSimulation(static_config).Run();
  EXPECT_LT(dynamic_report.EquilibriumBandwidthRate(),
            0.5 * static_report.EquilibriumBandwidthRate());
  EXPECT_LT(dynamic_report.EquilibriumLatency(),
            static_report.EquilibriumLatency());
}

TEST(IntegrationTest, ClosestOnlyCannotRelieveLocalOverload) {
  // Sec. 3's America/Europe example: one site is swamped by requests
  // originating from its own vicinity. Always-closest distribution keeps
  // every local request on the swamped host no matter how many replicas
  // placement creates, so its queue grows without bound; the paper's
  // distributor spills the excess to the other replica and recovers.
  auto make_topology = [] {
    net::TopologyBuilder b;
    b.AddNode("America", net::Region::kEasternNorthAmerica,
              /*is_gateway=*/true);
    // Europe hosts but takes no client requests directly: all demand
    // enters through the American gateway.
    b.AddNode("Europe", net::Region::kEurope, /*is_gateway=*/false);
    b.Link("America", "Europe", MillisToSim(10.0), 350.0 * 1024.0);
    return std::move(b).Build();
  };
  SimConfig config;
  config.num_objects = 10;
  config.initial_home = [](ObjectId) { return NodeId{0}; };  // all American
  config.node_request_rate = 24.0;  // 1.2x one host's capacity
  config.server_capacity = 20.0;
  config.protocol.high_watermark = 15.0;
  config.protocol.low_watermark = 12.0;
  config.workload = WorkloadKind::kUniform;
  config.duration = SecondsToSim(3600.0);
  config.seed = 5;

  SimConfig closest_config = config;
  closest_config.distribution = baselines::DistributionPolicy::kClosest;
  const RunReport closest_report =
      HostingSimulation(closest_config, make_topology()).Run();

  SimConfig radar_config = config;
  radar_config.distribution = baselines::DistributionPolicy::kRadar;
  const RunReport radar_report =
      HostingSimulation(radar_config, make_topology()).Run();

  // Closest-only: 30 req/s forever against a 20 req/s host -> the backlog
  // at the end is enormous. Radar: the spill rule plus offloading split
  // the demand across both hosts and the system stays healthy.
  EXPECT_GT(closest_report.EquilibriumLatency(), 60.0);
  EXPECT_LT(radar_report.EquilibriumLatency(), 5.0);
}

TEST(IntegrationTest, HighLoadShrinksGains) {
  // Fig. 9: with the watermarks halved relative to the mean load, the
  // protocol still works but its bandwidth gains diminish.
  SimConfig low = BaseConfig();
  low.workload = WorkloadKind::kRegional;
  SimConfig high = low;
  high.protocol.high_watermark = 50.0 / 10.0;
  high.protocol.low_watermark = 40.0 / 10.0;
  const RunReport low_report = HostingSimulation(low).Run();
  const RunReport high_report = HostingSimulation(high).Run();
  EXPECT_GE(high_report.EquilibriumBandwidthRate(),
            low_report.EquilibriumBandwidthRate() * 0.98);
  // The protocol remains safe: every request is still serviced.
  EXPECT_EQ(high_report.dropped_requests, 0);
}

TEST(IntegrationTest, DemandShiftReAdapts) {
  // Responsiveness (Sec. 1.2): after the demand pattern changes, traffic
  // first rises (replicas are placed for the old pattern) and then settles
  // back down as the protocol re-adapts.
  SimConfig config = BaseConfig();
  config.duration = SecondsToSim(4800.0);
  HostingSimulation sim(config);
  auto before = std::make_unique<workload::RegionalWorkload>(
      config.num_objects, sim.topology());
  auto after = std::make_unique<workload::ZipfWorkload>(config.num_objects);
  sim.SetWorkload(std::make_unique<workload::DemandShiftWorkload>(
      std::move(before), std::move(after), SecondsToSim(2400.0)));
  const RunReport report = sim.Run();

  const auto& payload = report.traffic.payload();
  const std::size_t shift_bucket = 2400 / 60;
  ASSERT_GT(payload.num_buckets(), shift_bucket + 10);
  // Re-adapted: final traffic rate is below the immediate post-shift rate.
  const double post_shift = payload.RateAt(shift_bucket + 1);
  const double settled =
      payload.MeanRateOver(payload.num_buckets() - 6,
                           payload.num_buckets() - 2);
  EXPECT_LT(settled, post_shift);
}

TEST(IntegrationTest, EveryObjectRetainsAtLeastOneReplica) {
  SimConfig config = BaseConfig();
  config.duration = SecondsToSim(1500.0);
  config.workload = WorkloadKind::kHotPages;  // many cold deletion targets
  HostingSimulation sim(config);
  const RunReport report = sim.Run();
  (void)report;
  const auto& redirectors = sim.cluster().redirectors();
  std::int64_t objects_seen = 0;
  for (int i = 0; i < redirectors.size(); ++i) {
    const auto& r = const_cast<core::RedirectorGroup&>(redirectors).At(i);
    for (const ObjectId x : r.Objects()) {
      EXPECT_GE(r.ReplicaCount(x), 1);
      ++objects_seen;
    }
  }
  EXPECT_EQ(objects_seen, config.num_objects);
}

}  // namespace
}  // namespace radar::driver
