// Golden determinism pin for the request engine.
//
// The hot-path machinery (precomputed latency matrices, allocation-free
// events, dense distance rows) is pure mechanism: it must not move a
// single bit of simulation output. This test runs a short fig6-style
// simulation and compares the full ReportJson dump byte-for-byte against
// a committed golden produced by the pre-optimization engine, so any
// change to event ordering, latency arithmetic, or replica choice fails
// loudly with a diff.
//
// Regenerate (only for an *intentional* semantic change, with a DESIGN.md
// note):  RADAR_UPDATE_GOLDEN=1 ./determinism_test
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "driver/config.h"
#include "driver/hosting_simulation.h"
#include "driver/report_json.h"

namespace radar {
namespace {

std::string GoldenPath() {
  return std::string(RADAR_GOLDEN_DIR) + "/fig6_short_report.json";
}

// A scaled-down Fig. 6 run: default Table 1 rates on the UUNET backbone
// under Zipf, long enough to cross placement rounds so the replication /
// migration / transfer-hook paths all execute.
driver::SimConfig GoldenConfig() {
  driver::SimConfig config;
  config.duration = SecondsToSim(200.0);
  config.num_objects = 1'000;
  config.seed = 1;
  config.workload = driver::WorkloadKind::kZipf;
  return config;
}

TEST(GoldenDeterminismTest, Fig6ShortRunReportIsByteIdentical) {
  driver::HostingSimulation sim(GoldenConfig());
  const driver::RunReport report = sim.Run();
  const std::string dump = driver::ReportJson(report).Dump(2) + "\n";

  // The run must actually exercise the paths the engine optimizes.
  ASSERT_GT(report.total_requests, 0);
  ASSERT_GT(report.object_copies, 0);

  if (std::getenv("RADAR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << GoldenPath();
    out << dump;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "golden updated: " << GoldenPath();
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << "missing golden " << GoldenPath()
      << " (generate with RADAR_UPDATE_GOLDEN=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  EXPECT_EQ(dump, golden)
      << "engine output drifted from the committed golden; if the change "
         "is intentional, regenerate with RADAR_UPDATE_GOLDEN=1 and "
         "document why in DESIGN.md";
}

TEST(GoldenDeterminismTest, RepeatRunsAreByteIdentical) {
  driver::HostingSimulation a(GoldenConfig());
  driver::HostingSimulation b(GoldenConfig());
  const std::string dump_a = driver::ReportJson(a.Run()).Dump(2);
  const std::string dump_b = driver::ReportJson(b.Run()).Dump(2);
  EXPECT_EQ(dump_a, dump_b);
}

}  // namespace
}  // namespace radar
