// Scale smoke: a 10k-node generated topology must construct a sparse
// NetModel without dense n^2 state. The dense backend's two latency
// matrices alone are ~1.6 GB at this size, so the peak-RSS assertion is
// the regression tripwire for anything quadratic sneaking back into the
// sparse path. The RSS bound is skipped under sanitizers (shadow memory
// and quarantines inflate ru_maxrss far past the real footprint).
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cstdint>

#include "net/net_model.h"
#include "net/topology_gen.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RADAR_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RADAR_UNDER_SANITIZER 1
#endif

namespace radar::net {
namespace {

constexpr std::int64_t kObjectBytes = 512 * 1024;

#if !defined(RADAR_UNDER_SANITIZER)
/// Peak resident set size in bytes (Linux reports ru_maxrss in KiB).
std::int64_t PeakRssBytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
}
#endif

TEST(ScaleSmokeTest, TenThousandNodeSparseModelStaysSmall) {
  const TopologySpec spec = ParseTopologySpec("ts:n=10000,seed=7");
  const Topology topo = GenerateTopology(spec);
  ASSERT_EQ(topo.num_nodes(), 10000);
  ASSERT_TRUE(topo.graph().IsConnected());
  const std::vector<NodeId> gateways = topo.GatewayNodes();
  ASSERT_EQ(gateways.size(), static_cast<std::size_t>(spec.ExpectedGateways()));

  // kAuto must pick the sparse backend at this size.
  ASSERT_EQ(ResolveOracleKind(OracleKind::kAuto, topo.num_nodes()),
            OracleKind::kSparse);
  const NetModel net(topo, kObjectBytes, OracleKind::kAuto);
  ASSERT_TRUE(net.sparse());
  EXPECT_EQ(net.num_nodes(), 10000);

  // Spot-check oracle sanity: gateway rows exist and answer plausibly.
  const NodeId g0 = gateways.front();
  const NodeId g1 = gateways.back();
  ASSERT_NE(net.ControlRow(g0), nullptr);
  EXPECT_EQ(net.Control(g0, g0), 0);
  EXPECT_EQ(net.HopDistance(g0, g0), 0);
  EXPECT_GT(net.Control(g0, g1), 0);
  EXPECT_GT(net.Transfer(g0, g1), net.Control(g0, g1));
  EXPECT_EQ(net.ControlRow(g0)[g1], net.Control(g0, g1));
  // Both endpoints rowed: the pair is exact in both directions, and hop
  // counts agree because hop-metric shortest distances are symmetric.
  EXPECT_EQ(net.HopDistance(g0, g1), net.HopDistance(g1, g0));

#if !defined(RADAR_UNDER_SANITIZER)
  // Generator + sparse model must stay far below the ~1.6 GB a dense
  // matrix pair would need (measured footprint is tens of MB).
  constexpr std::int64_t kRssBudgetBytes = 768ll * 1024 * 1024;
  EXPECT_LT(PeakRssBytes(), kRssBudgetBytes);
#endif
}

}  // namespace
}  // namespace radar::net
