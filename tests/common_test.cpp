// Unit tests for radar::common — PRNG, Zipf sampling, statistics, time.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "common/zipf.h"

namespace radar {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(23);
  double total = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) total += rng.NextExponential(2.5);
  EXPECT_NEAR(total / kSamples, 2.5, 0.05);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng root(99);
  Rng a = root.Fork(0);
  Rng b = root.Fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng r1(5);
  Rng r2(5);
  Rng a = r1.Fork(7);
  Rng b = r2.Fork(7);
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(ReedsZipfTest, RanksWithinDomain) {
  ReedsZipf zipf(1000);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto rank = zipf.Sample(rng);
    EXPECT_GE(rank, 1);
    EXPECT_LE(rank, 1000);
  }
}

TEST(ReedsZipfTest, SingleObjectAlwaysRankOne) {
  ReedsZipf zipf(1);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 1);
}

TEST(ReedsZipfTest, PopularityDecreasesFromRankTwo) {
  // Analytically, the Reeds closed form gives rank r probability
  // ln((r+0.5)/(r-0.5)) / ln(n) for r >= 2 — strictly decreasing in r.
  // (Rank 1 is the known distortion of the approximation: its mass,
  // ln(1.5)/ln(n), is *below* rank 2's.)
  ReedsZipf zipf(10000);
  Rng rng(5);
  std::vector<int> counts(17, 0);
  constexpr int kSamples = 400000;
  int total_tracked = 0;
  for (int i = 0; i < kSamples; ++i) {
    const auto rank = zipf.Sample(rng);
    if (rank <= 16) {
      ++counts[static_cast<std::size_t>(rank)];
      ++total_tracked;
    }
  }
  EXPECT_GT(counts[2], counts[4]);
  EXPECT_GT(counts[4], counts[8]);
  EXPECT_GT(counts[8], counts[16]);
  // The head of the distribution carries substantial mass.
  EXPECT_GT(total_tracked, kSamples / 10);
}

TEST(ReedsZipfTest, ApproximatesExactZipfBeyondRankOne) {
  // The paper reports the Reeds closed form stays within ~15% of Zipf's
  // law. That holds from rank 2 onward (the ratio to exact Zipf is about
  // H_n / ln n ~ 1.08 for n = 1000); rank 1 is distorted by construction.
  constexpr std::int64_t kN = 1000;
  ReedsZipf reeds(kN);
  ExactZipf exact(kN);
  Rng rng(6);
  constexpr int kSamples = 2000000;
  std::vector<double> reeds_freq(7, 0.0);
  for (int i = 0; i < kSamples; ++i) {
    const auto rank = reeds.Sample(rng);
    if (rank <= 6) reeds_freq[static_cast<std::size_t>(rank)] += 1.0;
  }
  for (std::int64_t r = 2; r <= 6; ++r) {
    const double observed =
        reeds_freq[static_cast<std::size_t>(r)] / kSamples;
    const double expected = exact.Pmf(r);
    EXPECT_NEAR(observed, expected, expected * 0.20) << "rank " << r;
  }
}

TEST(ReedsZipfTest, RankOneMassMatchesClosedForm) {
  constexpr std::int64_t kN = 1000;
  ReedsZipf reeds(kN);
  Rng rng(8);
  constexpr int kSamples = 1000000;
  int rank_one = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (reeds.Sample(rng) == 1) ++rank_one;
  }
  const double expected = std::log(1.5) / std::log(static_cast<double>(kN));
  EXPECT_NEAR(static_cast<double>(rank_one) / kSamples, expected,
              expected * 0.05);
}

TEST(ExactZipfTest, PmfSumsToOne) {
  ExactZipf zipf(500);
  double total = 0.0;
  for (std::int64_t r = 1; r <= 500; ++r) total += zipf.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ExactZipfTest, PmfFollowsInverseRank) {
  ExactZipf zipf(100);
  EXPECT_NEAR(zipf.Pmf(1) / zipf.Pmf(2), 2.0, 1e-9);
  EXPECT_NEAR(zipf.Pmf(1) / zipf.Pmf(10), 10.0, 1e-9);
}

TEST(ExactZipfTest, GeneralizedExponent) {
  ExactZipf zipf(100, 2.0);
  EXPECT_NEAR(zipf.Pmf(1) / zipf.Pmf(2), 4.0, 1e-9);
}

TEST(OnlineStatsTest, BasicMoments) {
  OnlineStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(x);
  EXPECT_EQ(s.count(), 5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_NEAR(s.variance(), 2.5, 1e-12);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, MergeMatchesCombined) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 10.0;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(BucketedSeriesTest, AccumulatesIntoRightBuckets) {
  BucketedSeries s(SecondsToSim(10.0));
  s.Add(SecondsToSim(1.0), 5.0);
  s.Add(SecondsToSim(9.0), 5.0);
  s.Add(SecondsToSim(15.0), 7.0);
  ASSERT_EQ(s.num_buckets(), 2u);
  EXPECT_DOUBLE_EQ(s.SumAt(0), 10.0);
  EXPECT_EQ(s.CountAt(0), 2);
  EXPECT_DOUBLE_EQ(s.SumAt(1), 7.0);
  EXPECT_DOUBLE_EQ(s.MeanAt(1), 7.0);
}

TEST(BucketedSeriesTest, RateDividesByWidth) {
  BucketedSeries s(SecondsToSim(10.0));
  s.Add(SecondsToSim(3.0), 100.0);
  EXPECT_DOUBLE_EQ(s.RateAt(0), 10.0);
}

TEST(BucketedSeriesTest, MeanRateOverRange) {
  BucketedSeries s(SecondsToSim(1.0));
  s.Add(SecondsToSim(0.5), 2.0);
  s.Add(SecondsToSim(1.5), 4.0);
  s.Add(SecondsToSim(2.5), 6.0);
  EXPECT_DOUBLE_EQ(s.MeanRateOver(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(s.MeanRateOver(1, 99), 5.0);  // clamps
  EXPECT_DOUBLE_EQ(s.MeanRateOver(5, 6), 0.0);   // empty range
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.5);
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
}

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(SecondsToSim(1.0), 1'000'000);
  EXPECT_EQ(MillisToSim(10.0), 10'000);
  EXPECT_DOUBLE_EQ(SimToSeconds(1'500'000), 1.5);
}

TEST(FormatMinutesTest, Formats) {
  EXPECT_EQ(FormatMinutes(0.0), "0:00");
  EXPECT_EQ(FormatMinutes(65.0), "1:05");
  EXPECT_EQ(FormatMinutes(1201.0), "20:01");
}

}  // namespace
}  // namespace radar
