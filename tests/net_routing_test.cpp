// Unit tests for radar::net::RoutingTable: shortest paths, deterministic
// tie-breaking, centrality.
#include <gtest/gtest.h>

#include "net/graph.h"
#include "net/routing.h"
#include "net/uunet.h"

namespace radar::net {
namespace {

constexpr SimTime kDelay = MillisToSim(10.0);
constexpr double kBw = 350.0 * 1024.0;

Graph LineGraph(std::int32_t n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.AddLink(i, i + 1, kDelay, kBw);
  return g;
}

TEST(RoutingTest, LineDistances) {
  const Graph g = LineGraph(5);
  const RoutingTable rt(g);
  EXPECT_EQ(rt.HopDistance(0, 4), 4);
  EXPECT_EQ(rt.HopDistance(4, 0), 4);
  EXPECT_EQ(rt.HopDistance(2, 2), 0);
  EXPECT_EQ(rt.HopDistance(1, 3), 2);
}

TEST(RoutingTest, PathEndpointsAndLength) {
  const Graph g = LineGraph(4);
  const RoutingTable rt(g);
  const auto& path = rt.Path(0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 3);
  EXPECT_EQ(path[1], 1);
  EXPECT_EQ(path[2], 2);
}

TEST(RoutingTest, SelfPathIsSingleton) {
  const Graph g = LineGraph(3);
  const RoutingTable rt(g);
  const auto& path = rt.Path(1, 1);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1);
  EXPECT_EQ(rt.NextHop(1, 1), 1);
}

TEST(RoutingTest, NextHopOnLine) {
  const Graph g = LineGraph(4);
  const RoutingTable rt(g);
  EXPECT_EQ(rt.NextHop(0, 3), 1);
  EXPECT_EQ(rt.NextHop(3, 0), 2);
  EXPECT_EQ(rt.NextHop(0, 1), 1);
}

TEST(RoutingTest, EqualCostTieBreakIsDeterministic) {
  // Diamond: 0-1, 0-2, 1-3, 2-3: two equal 2-hop paths from 0 to 3. The
  // hashed tie-break must pick exactly one of them, stably across table
  // rebuilds ("one path is chosen for all requests from i to j").
  Graph g(4);
  g.AddLink(0, 1, kDelay, kBw);
  g.AddLink(0, 2, kDelay, kBw);
  g.AddLink(1, 3, kDelay, kBw);
  g.AddLink(2, 3, kDelay, kBw);
  const RoutingTable a(g);
  const RoutingTable b(g);
  const auto& path = a.Path(0, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_TRUE(path[1] == 1 || path[1] == 2);
  EXPECT_EQ(path, b.Path(0, 3));
  EXPECT_EQ(a.Path(3, 0), b.Path(3, 0));
}

TEST(RoutingTest, EqualCostMultipathSpreadsAcrossAlternatives) {
  // The hashed tie-break exists to avoid collapsing all equal-cost routes
  // onto the lowest-numbered hub. On a K4-minus-edge "theta" graph with
  // many leaf pairs, both middle nodes must carry some canonical paths.
  Graph g(12);
  // Two hubs (0, 1) each connected to all ten leaves 2..11.
  for (NodeId leaf = 2; leaf < 12; ++leaf) {
    g.AddLink(0, leaf, kDelay, kBw);
    g.AddLink(1, leaf, kDelay, kBw);
  }
  const RoutingTable rt(g);
  int via_hub0 = 0;
  int via_hub1 = 0;
  for (NodeId a = 2; a < 12; ++a) {
    for (NodeId b = 2; b < 12; ++b) {
      if (a == b) continue;
      const auto& path = rt.Path(a, b);
      ASSERT_EQ(path.size(), 3u);
      if (path[1] == 0) ++via_hub0;
      if (path[1] == 1) ++via_hub1;
    }
  }
  EXPECT_GT(via_hub0, 0);
  EXPECT_GT(via_hub1, 0);
}

TEST(RoutingTest, SamePairAlwaysSamePath) {
  // "one path is chosen for all requests from i to j" — table rebuild on
  // the identical graph yields identical paths.
  const Graph g = MakeUunetBackbone().graph();
  const RoutingTable a(g);
  const RoutingTable b(g);
  for (NodeId i = 0; i < g.num_nodes(); i += 7) {
    for (NodeId j = 0; j < g.num_nodes(); j += 5) {
      EXPECT_EQ(a.Path(i, j), b.Path(i, j));
    }
  }
}

TEST(RoutingTest, DelayMetricDiffersFromHops) {
  // 0-1-2 with fast links vs direct slow 0-2 link: hops prefers direct,
  // delay prefers the two-hop route.
  Graph g(3);
  g.AddLink(0, 1, MillisToSim(1.0), kBw);
  g.AddLink(1, 2, MillisToSim(1.0), kBw);
  g.AddLink(0, 2, MillisToSim(50.0), kBw);
  const RoutingTable hops(g, RoutingMetric::kHops);
  const RoutingTable delay(g, RoutingMetric::kDelay);
  EXPECT_EQ(hops.Path(0, 2).size(), 2u);
  EXPECT_EQ(delay.Path(0, 2).size(), 3u);
  EXPECT_EQ(delay.Cost(0, 2), MillisToSim(2.0));
}

TEST(RoutingTest, CostEqualsHopsUnderHopMetric) {
  const Graph g = LineGraph(6);
  const RoutingTable rt(g);
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = 0; j < 6; ++j) {
      EXPECT_EQ(rt.Cost(i, j), rt.HopDistance(i, j));
    }
  }
}

TEST(RoutingTest, MeanHopDistanceOnLine) {
  const Graph g = LineGraph(3);
  const RoutingTable rt(g);
  // Node 1 (middle): distances 1,1 -> mean 1. Ends: 1,2 -> mean 1.5.
  EXPECT_DOUBLE_EQ(rt.MeanHopDistance(1), 1.0);
  EXPECT_DOUBLE_EQ(rt.MeanHopDistance(0), 1.5);
  EXPECT_EQ(rt.MostCentralNode(), 1);
}

TEST(RoutingTest, CentralityOrdering) {
  const Graph g = LineGraph(5);
  const RoutingTable rt(g);
  const auto order = rt.NodesByCentrality();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 2);  // middle of the line
  // Ends are least central.
  EXPECT_TRUE(order[3] == 0 || order[3] == 4);
  EXPECT_TRUE(order[4] == 0 || order[4] == 4);
}

TEST(RoutingTest, TriangleSymmetricPaths) {
  Graph g(3);
  g.AddLink(0, 1, kDelay, kBw);
  g.AddLink(1, 2, kDelay, kBw);
  g.AddLink(0, 2, kDelay, kBw);
  const RoutingTable rt(g);
  for (NodeId i = 0; i < 3; ++i) {
    for (NodeId j = 0; j < 3; ++j) {
      EXPECT_EQ(rt.HopDistance(i, j), i == j ? 0 : 1);
    }
  }
}

TEST(RoutingTest, PathsAreShortest) {
  // Property: on the backbone, every canonical path length equals the hop
  // distance and consecutive path nodes are adjacent.
  const Graph g = MakeUunetBackbone().graph();
  const RoutingTable rt(g);
  for (NodeId i = 0; i < g.num_nodes(); i += 3) {
    for (NodeId j = 0; j < g.num_nodes(); j += 3) {
      const auto& path = rt.Path(i, j);
      EXPECT_EQ(static_cast<std::int32_t>(path.size()) - 1,
                rt.HopDistance(i, j));
      for (std::size_t k = 1; k < path.size(); ++k) {
        EXPECT_TRUE(g.HasLink(path[k - 1], path[k]));
      }
    }
  }
}

TEST(RoutingTest, TriangleInequalityHolds) {
  const Graph g = MakeUunetBackbone().graph();
  const RoutingTable rt(g);
  for (NodeId i = 0; i < g.num_nodes(); i += 5) {
    for (NodeId j = 0; j < g.num_nodes(); j += 5) {
      for (NodeId k = 0; k < g.num_nodes(); k += 5) {
        EXPECT_LE(rt.HopDistance(i, j),
                  rt.HopDistance(i, k) + rt.HopDistance(k, j));
      }
    }
  }
}

TEST(RoutingDeathTest, DisconnectedGraphAborts) {
  Graph g(3);
  g.AddLink(0, 1, kDelay, kBw);
  EXPECT_DEATH(RoutingTable rt(g), "connected");
}

}  // namespace
}  // namespace radar::net
