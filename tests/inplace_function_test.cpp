// Tests for sim::InplaceFunction (sim/inplace_function.h): the move-only
// small-buffer callable the event queue schedules by the millions. Pins
// the semantics the hot path depends on — move-only transfer, the
// compile-time capacity gate, emplace-style assignment, and destruction
// of captured state — so a future "convenience" change (copyability, an
// allocation fallback) fails here before it can silently change the
// engine's allocation profile.
#include "sim/inplace_function.h"

#include <memory>
#include <utility>

#include <gtest/gtest.h>

namespace radar::sim {
namespace {

using VoidFn = InplaceFunction<void(), 64>;
using IntFn = InplaceFunction<int(int), 64>;

TEST(InplaceFunctionTest, DefaultConstructedIsEmpty) {
  VoidFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  VoidFn null_fn(nullptr);
  EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(InplaceFunctionTest, InvokesCaptureAndReturnsValue) {
  int base = 40;
  IntFn fn = [base](int x) { return base + x; };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(2), 42);
}

TEST(InplaceFunctionTest, MoveTransfersCallableAndEmptiesSource) {
  int calls = 0;
  VoidFn a = [&calls] { ++calls; };
  VoidFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(InplaceFunctionTest, MoveAssignReplacesHeldCallable) {
  int first = 0;
  int second = 0;
  VoidFn fn = [&first] { ++first; };
  VoidFn other = [&second] { ++second; };
  fn = std::move(other);
  fn();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(InplaceFunctionTest, AssigningCallableEmplacesInPlace) {
  // The converting assignment is the event queue's slot-refill path: the
  // lambda is constructed directly in the buffer, replacing the old one.
  int first = 0;
  int second = 0;
  VoidFn fn = [&first] { ++first; };
  fn = [&second] { ++second; };
  fn();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(InplaceFunctionTest, MoveOnlyCapturesAreSupported) {
  auto value = std::make_unique<int>(7);
  IntFn fn = [v = std::move(value)](int x) { return *v + x; };
  EXPECT_EQ(fn(3), 10);
  IntFn moved = std::move(fn);
  EXPECT_EQ(moved(0), 7);
}

TEST(InplaceFunctionTest, CanHoldGatesOnCaptureSize) {
  // can_hold mirrors the constructor's static_assert, so the capacity
  // boundary is testable without a compile failure.
  struct Fits {
    char bytes[64];
    void operator()() {}
  };
  struct TooBig {
    char bytes[65];
    void operator()() {}
  };
  static_assert(VoidFn::can_hold<Fits>);
  static_assert(!VoidFn::can_hold<TooBig>);
  static_assert(VoidFn::kCapacity == 64);
  // A pointer capture always fits: the idiom the checklist recommends for
  // closures over big state.
  static_assert(VoidFn::can_hold<decltype([p = static_cast<int*>(nullptr)] {
    (void)p;
  })>);
}

TEST(InplaceFunctionTest, DestroysCapturedStateExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> count;
    ~Probe() {
      if (count != nullptr) ++*count;
    }
    Probe(std::shared_ptr<int> c) : count(std::move(c)) {}
    Probe(Probe&&) noexcept = default;
    void operator()() {}
  };
  {
    VoidFn fn = Probe(counter);
    EXPECT_EQ(*counter, 0);  // alive while held
  }
  // One destruction for the held callable; moved-from temporaries carry a
  // null shared_ptr and don't count.
  EXPECT_EQ(*counter, 1);
}

TEST(InplaceFunctionTest, ResetDestroysAndEmpties) {
  auto counter = std::make_shared<int>(0);
  VoidFn fn = [counter] { (void)counter; };
  EXPECT_EQ(counter.use_count(), 2);
  fn.Reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_EQ(counter.use_count(), 1);
  fn.Reset();  // idempotent on an empty function
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InplaceFunctionTest, SelfMoveAssignIsSafe) {
  int calls = 0;
  VoidFn fn = [&calls] { ++calls; };
  VoidFn& alias = fn;
  fn = std::move(alias);
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace radar::sim
