// Tests for the real-system-mode transport layer (src/transport): node
// config parsing, the SimNet transport's TCP-like semantics (delays,
// spool-while-down, drain-on-reconnect, in-flight loss), and the
// HostNode/RedirectorNode brains driven over SimNet — the same protocol
// exchanges the daemons run over sockets, here deterministic and
// in-process: redirect round trips, Fig. 4 CreateObj over the wire,
// redirector-arbitrated drops, crash/reconnect conservation, and the
// overload shed loop end to end.
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/types.h"
#include "core/params.h"
#include "sim/simulator.h"
#include "transport/host_node.h"
#include "transport/node_config.h"
#include "transport/redirector_node.h"
#include "transport/sim_transport.h"
#include "wire/codec.h"

namespace radar::transport {
namespace {

std::optional<NodeConfig> Parse(const std::string& text, std::string* error) {
  std::istringstream in(text);
  return NodeConfig::Load(in, error);
}

// ---------------------------------------------------------------------
// Node config.
// ---------------------------------------------------------------------

TEST(NodeConfigTest, ParsesRolesPortsWeightsAndComments) {
  std::string error;
  const auto config = Parse(
      "# platform\n"
      "0 redirector 10.0.0.1 9000\n"
      "1 host 10.0.0.2 9001 2.5  # beefy\n"
      "2 host 10.0.0.3 9002\n"
      "3 client 10.0.0.9 0\n",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->num_nodes(), 4);
  EXPECT_EQ(config->redirector(), 0);
  EXPECT_EQ(config->hosts(), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(config->At(1).weight, 2.5);
  EXPECT_EQ(config->At(2).weight, 1.0);
  EXPECT_EQ(config->At(3).role, NodeRole::kClient);
  EXPECT_EQ(config->At(0).port, 9000);
  EXPECT_EQ(config->At(0).address, "10.0.0.1");
  // Round-robin over host entries (ids 1 and 2), not over all nodes.
  EXPECT_EQ(config->InitialHome(0), 1);
  EXPECT_EQ(config->InitialHome(1), 2);
  EXPECT_EQ(config->InitialHome(2), 1);
}

TEST(NodeConfigTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Parse("", &error).has_value());
  EXPECT_FALSE(Parse("0 host 10.0.0.1 9000\n", &error).has_value())
      << "no redirector must fail";
  EXPECT_FALSE(Parse("0 redirector a 1\n1 redirector b 2\n", &error)
                   .has_value())
      << "two redirectors must fail";
  EXPECT_FALSE(Parse("1 redirector a 9000\n", &error).has_value())
      << "non-dense ids must fail";
  EXPECT_FALSE(Parse("0 gateway a 9000\n", &error).has_value())
      << "unknown role must fail";
  EXPECT_FALSE(Parse("0 redirector a 0\n", &error).has_value())
      << "port 0 on a non-client must fail";
  EXPECT_FALSE(Parse("0 redirector a 70000\n", &error).has_value())
      << "out-of-range port must fail";
  EXPECT_FALSE(Parse("0 redirector a 9000 -1\n", &error).has_value())
      << "non-positive weight must fail";
  EXPECT_FALSE(Parse("0 redirector\n", &error).has_value())
      << "short line must fail";
  EXPECT_FALSE(error.empty());
}

TEST(NodeConfigTest, CliqueDistance) {
  CliqueDistance distance(3);
  EXPECT_EQ(distance.Distance(0, 0), 0);
  EXPECT_EQ(distance.Distance(0, 2), 1);
  EXPECT_EQ(distance.Distance(2, 1), 1);
}

// ---------------------------------------------------------------------
// SimNet semantics.
// ---------------------------------------------------------------------

/// Recording brain: keeps every decoded frame and peer transition.
class Recorder : public Handler {
 public:
  struct Seen {
    NodeId from;
    wire::DecodedFrame frame;
  };

  void OnFrame(NodeId from, const wire::DecodedFrame& frame) override {
    seen.push_back(Seen{from, frame});
  }
  void OnPeerUp(NodeId peer) override { ups.push_back(peer); }
  void OnPeerDown(NodeId peer) override { downs.push_back(peer); }

  std::vector<Seen> seen;
  std::vector<NodeId> ups;
  std::vector<NodeId> downs;
};

TEST(SimNetTest, DeliversEncodedFramesAfterDelay) {
  sim::Simulator sim;
  SimNet net(&sim, 2, 1000);
  Recorder a, b;
  Transport* ta = net.Attach(0, &a);
  net.Attach(1, &b);

  const std::uint64_t seq = ta->Send(1, wire::Request{7, 0});
  EXPECT_GE(seq, 1u);
  sim.RunUntil(999);
  EXPECT_TRUE(b.seen.empty()) << "frame must not arrive early";
  sim.RunUntil(2000);
  ASSERT_EQ(b.seen.size(), 1u);
  EXPECT_EQ(b.seen[0].from, 0);
  EXPECT_EQ(b.seen[0].frame.seq, seq);
  EXPECT_EQ(std::get<wire::Request>(b.seen[0].frame.msg),
            (wire::Request{7, 0}));
  EXPECT_EQ(net.frames_delivered(), 1u);
}

TEST(SimNetTest, DownNodeSpoolsAndDrainsInOrderLosesInFlight) {
  sim::Simulator sim;
  SimNet net(&sim, 3, 1000);
  Recorder a, b, c;
  Transport* ta = net.Attach(0, &a);
  net.Attach(1, &b);
  net.Attach(2, &c);

  // One frame in flight when the destination dies: lost (dropped
  // connection loses its buffered data).
  ta->Send(1, wire::Request{1, 0});
  sim.RunUntil(500);
  net.SetNodeUp(1, false);
  EXPECT_FALSE(ta->IsPeerUp(1));
  EXPECT_EQ(a.downs, (std::vector<NodeId>{1}));
  EXPECT_EQ(c.downs, (std::vector<NodeId>{1}));

  // Frames sent while down spool.
  ta->Send(1, wire::Request{2, 0});
  ta->Send(1, wire::Request{3, 0});
  sim.RunUntil(5000);
  EXPECT_TRUE(b.seen.empty());
  EXPECT_EQ(net.frames_dropped(), 1u);
  EXPECT_EQ(net.frames_spooled(), 2u);

  // Reconnect: peers see it up, spool drains in send order.
  net.SetNodeUp(1, true);
  EXPECT_EQ(a.ups, (std::vector<NodeId>{1}));
  // The returning node learns about every up peer.
  EXPECT_EQ(b.ups, (std::vector<NodeId>{0, 2}));
  sim.RunUntil(10000);
  ASSERT_EQ(b.seen.size(), 2u);
  EXPECT_EQ(std::get<wire::Request>(b.seen[0].frame.msg).object, 2);
  EXPECT_EQ(std::get<wire::Request>(b.seen[1].frame.msg).object, 3);
  EXPECT_EQ(net.frames_drained(), 2u);
}

// ---------------------------------------------------------------------
// Brains over SimNet: the daemons' protocol, deterministic.
// ---------------------------------------------------------------------

constexpr const char* kPlatform =
    "0 redirector 127.0.0.1 9000\n"
    "1 host 127.0.0.1 9001\n"
    "2 host 127.0.0.1 9002\n"
    "3 client 127.0.0.1 0\n";

/// Forwards to a brain bound after the transport exists (the daemons'
/// SetHandler two-phase, SimNet edition).
class LateHandler final : public Handler {
 public:
  void Bind(Handler* target) { target_ = target; }

  void OnFrame(NodeId from, const wire::DecodedFrame& frame) override {
    if (target_ != nullptr) target_->OnFrame(from, frame);
  }
  void OnPeerUp(NodeId peer) override {
    if (target_ != nullptr) target_->OnPeerUp(peer);
  }
  void OnPeerDown(NodeId peer) override {
    if (target_ != nullptr) target_->OnPeerDown(peer);
  }

 private:
  Handler* target_ = nullptr;
};

/// One redirector + two host brains + one recording client on a SimNet.
class BrainHarness {
 public:
  explicit BrainHarness(std::int32_t num_objects,
                        core::ProtocolParams params = {}) {
    std::string error;
    auto config = Parse(kPlatform, &error);
    RADAR_CHECK_MSG(config.has_value(), "platform config must parse");
    config_ = std::make_unique<NodeConfig>(*std::move(config));
    net_ = std::make_unique<SimNet>(&sim_, config_->num_nodes(), 1000);

    RedirectorNode::Options ropt;
    ropt.num_objects = num_objects;
    redirector_ = std::make_unique<RedirectorNode>(
        *config_, net_->Attach(0, &late_[0]), ropt);
    late_[0].Bind(redirector_.get());

    HostNode::Options hopt;
    hopt.num_objects = num_objects;
    hopt.params = params;
    for (NodeId id : {1, 2}) {
      Transport* transport =
          net_->Attach(id, &late_[static_cast<std::size_t>(id)]);
      hosts_.push_back(std::make_unique<HostNode>(*config_, id, transport,
                                                  hopt));
      late_[static_cast<std::size_t>(id)].Bind(hosts_.back().get());
      transports_.push_back(transport);
    }
    client_transport_ = net_->Attach(3, &client_);

    for (auto& host : hosts_) {
      RADAR_CHECK_MSG(host->Init(&error), "host init must succeed");
    }
    sim_.RunUntil(sim_.Now() + 10'000);
  }

  HostNode& host(NodeId id) { return *hosts_[static_cast<std::size_t>(id - 1)]; }
  Transport* host_transport(NodeId id) {
    return transports_[static_cast<std::size_t>(id - 1)];
  }

  /// Client-side redirect round trip; returns the redirect target.
  NodeId AskRedirect(ObjectId x, NodeId gateway) {
    client_.seen.clear();
    client_transport_->Send(0, wire::Request{x, gateway});
    sim_.RunUntil(sim_.Now() + 10'000);
    for (const auto& s : client_.seen) {
      if (const auto* r = std::get_if<wire::Redirect>(&s.frame.msg)) {
        if (r->object == x) return r->host;
      }
    }
    return kInvalidNode;
  }

  /// Redirected fetch against a host; true when Ack'd accepted.
  bool Fetch(ObjectId x, NodeId host, NodeId gateway) {
    client_.seen.clear();
    const std::uint64_t seq =
        client_transport_->Send(host, wire::Request{x, gateway});
    sim_.RunUntil(sim_.Now() + 10'000);
    for (const auto& s : client_.seen) {
      if (const auto* a = std::get_if<wire::Ack>(&s.frame.msg)) {
        if (a->acked_seq == seq) return a->accepted;
      }
    }
    return false;
  }

  sim::Simulator sim_;
  std::unique_ptr<NodeConfig> config_;
  std::unique_ptr<SimNet> net_;
  std::array<LateHandler, 3> late_;
  std::unique_ptr<RedirectorNode> redirector_;
  std::vector<std::unique_ptr<HostNode>> hosts_;
  std::vector<Transport*> transports_;
  Recorder client_;
  Transport* client_transport_ = nullptr;
};

TEST(BrainTest, RedirectAndFetchRoundTrip) {
  BrainHarness h(4);
  // Objects 0,2 home on host 1; objects 1,3 on host 2.
  EXPECT_EQ(h.AskRedirect(0, 3), 1);
  EXPECT_EQ(h.AskRedirect(1, 3), 2);
  EXPECT_TRUE(h.Fetch(0, 1, 3));
  EXPECT_TRUE(h.Fetch(1, 2, 3));
  // A fetch for an object the host does not hold is refused, not lost.
  EXPECT_FALSE(h.Fetch(1, 1, 3));
  EXPECT_EQ(h.host(1).counters().requests_serviced, 1u);
  EXPECT_EQ(h.host(1).counters().requests_unhosted, 1u);
  EXPECT_EQ(h.redirector_->counters().redirects, 2u);
}

TEST(BrainTest, UnknownObjectRedirectsToInvalidNode) {
  BrainHarness h(2);
  EXPECT_EQ(h.AskRedirect(99, 3), kInvalidNode);
  EXPECT_EQ(h.redirector_->counters().redirects_no_replica, 1u);
}

TEST(BrainTest, CreateObjOverWireNotifiesRedirector) {
  BrainHarness h(2);
  // Host 1 receives CreateObj(REPLICATE) for object 1 (homed on host 2).
  // It must accept (it is idle), and the *recipient* notifies the
  // redirector, which records the second replica.
  h.host_transport(2)->Send(1, wire::Replicate{1, 2, 1, 0.5});
  h.sim_.RunUntil(h.sim_.Now() + 20'000);
  EXPECT_EQ(h.host(1).counters().create_accepted, 1u);
  EXPECT_TRUE(h.host(1).agent().HasObject(1));
  EXPECT_EQ(h.redirector_->counters().creates_recorded, 1u);
  EXPECT_EQ(h.redirector_->redirector().ReplicaCount(1), 2);
  // The registry stayed a subset of physical copies throughout; now both
  // hosts serve object 1.
  EXPECT_TRUE(h.Fetch(1, 1, 3));
  EXPECT_TRUE(h.Fetch(1, 2, 3));
}

TEST(BrainTest, ArbitratedDropRefusedAtFloorGrantedAboveIt) {
  BrainHarness h(2);
  // Sole replica: the drop request must be refused (min_replicas 1).
  h.host_transport(2)->Send(0, wire::Migrate{1, 2, 1, 0.0});
  h.sim_.RunUntil(h.sim_.Now() + 10'000);
  EXPECT_EQ(h.redirector_->counters().drops_refused, 1u);
  EXPECT_EQ(h.redirector_->redirector().ReplicaCount(1), 1);

  // Create a second copy on host 1, then the drop is granted.
  h.host_transport(2)->Send(1, wire::Replicate{1, 2, 1, 0.5});
  h.sim_.RunUntil(h.sim_.Now() + 20'000);
  ASSERT_EQ(h.redirector_->redirector().ReplicaCount(1), 2);
  h.host_transport(2)->Send(0, wire::Migrate{1, 2, 1, 0.0});
  h.sim_.RunUntil(h.sim_.Now() + 10'000);
  EXPECT_EQ(h.redirector_->counters().drops_granted, 1u);
  EXPECT_EQ(h.redirector_->redirector().ReplicaCount(1), 1);
}

TEST(BrainTest, CrashPrunesReconnectRestoresConservation) {
  BrainHarness h(4);
  ASSERT_EQ(h.redirector_->CountObjectsWithoutReplica(), 0);

  // Host 1 crashes: its replicas (objects 0 and 2) are pruned and clients
  // are no longer redirected into it.
  h.net_->SetNodeUp(1, false);
  h.sim_.RunUntil(h.sim_.Now() + 10'000);
  EXPECT_EQ(h.redirector_->counters().hosts_pruned, 1u);
  EXPECT_EQ(h.redirector_->counters().replicas_pruned, 2u);
  EXPECT_EQ(h.redirector_->CountObjectsWithoutReplica(), 2);
  EXPECT_EQ(h.AskRedirect(0, 3), kInvalidNode);
  EXPECT_EQ(h.AskRedirect(1, 3), 2);

  // Reconnect: OnPeerUp re-announces the replica set, the redirector
  // restores it, and no object is lost.
  h.net_->SetNodeUp(1, true);
  h.sim_.RunUntil(h.sim_.Now() + 20'000);
  EXPECT_EQ(h.redirector_->counters().announces_restored, 2u);
  EXPECT_EQ(h.redirector_->CountObjectsWithoutReplica(), 0);
  EXPECT_EQ(h.AskRedirect(0, 3), 1);

  // Announcing is idempotent: a second flap restores, never double-adds.
  h.net_->SetNodeUp(1, false);
  h.sim_.RunUntil(h.sim_.Now() + 10'000);
  h.net_->SetNodeUp(1, true);
  h.sim_.RunUntil(h.sim_.Now() + 20'000);
  EXPECT_EQ(h.redirector_->redirector().ReplicaCount(0), 1);
  EXPECT_EQ(h.redirector_->CountObjectsWithoutReplica(), 0);
}

TEST(BrainTest, StatsRelayHubAndSpoke) {
  BrainHarness h(2);
  // Host 1 reports its load; the redirector relays to host 2 only.
  h.host_transport(1)->Send(0, wire::PlacementStat{1, 10.0, 1.0, 2});
  h.sim_.RunUntil(h.sim_.Now() + 20'000);
  EXPECT_EQ(h.redirector_->counters().stats_relayed, 1u);
  EXPECT_EQ(h.host(2).counters().stats_seen, 1u);
  EXPECT_EQ(h.host(1).counters().stats_seen, 0u);
}

TEST(BrainTest, OverloadShedsHottestObjectToIdlePeer) {
  // Small watermarks and short intervals so a handful of requests push
  // host 1 into offloading mode within a few simulated seconds.
  core::ProtocolParams params;
  params.measurement_interval = SecondsToSim(1.0);
  params.placement_interval = SecondsToSim(2.0);
  params.high_watermark = 0.5;
  params.low_watermark = 0.4;
  BrainHarness h(2, params);

  // Drive requests for object 0 at host 1 while ticking both hosts (the
  // daemons call OnTick every poll; here every 100 simulated ms).
  for (int step = 0; step < 100; ++step) {
    if (step % 2 == 0) h.client_transport_->Send(1, wire::Request{0, 3});
    h.sim_.RunUntil(h.sim_.Now() + 100'000);
    h.host(1).OnTick();
    h.host(2).OnTick();
  }

  // Host 1 exceeded hw, learned from the relayed stats that host 2 is
  // idle, and shed object 0 there. Whether the Fig. 5 branch chose
  // migrate or replicate, host 2 must now hold a copy and the redirector
  // must know it — and no object was lost along the way.
  EXPECT_TRUE(h.host(2).agent().HasObject(0));
  EXPECT_GE(h.host(1).counters().migrates_out +
                h.host(1).counters().replicates_out,
            1u);
  EXPECT_GE(h.redirector_->redirector().ReplicaCount(0), 1);
  EXPECT_EQ(h.redirector_->CountObjectsWithoutReplica(), 0);
  // Repeated shed rounds may bump host 2's affinity; it must be recorded.
  EXPECT_GE(h.redirector_->redirector().AffinityOf(0, 2), 1);
}

}  // namespace
}  // namespace radar::transport
