// Tests for the fault-injection subsystem (src/fault) and the driver's
// reaction to it: plan parsing, message-fate counters, unavailability
// accounting, link-fault rerouting, the self-healing replica floor, and
// the determinism guarantees (fault-free runs untouched; chaotic runs
// byte-reproducible for a fixed plan and seed).
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "driver/config.h"
#include "driver/hosting_simulation.h"
#include "driver/report_json.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "net/path_latency.h"
#include "net/routing.h"
#include "net/topology.h"
#include "net/uunet.h"
#include "sim/simulator.h"

namespace radar {
namespace {

fault::FaultPlan MustParse(const std::string& text) {
  std::istringstream in(text);
  std::string error;
  auto plan = fault::ParseFaultPlan(in, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  return plan.value_or(fault::FaultPlan{});
}

// ---------------------------------------------------------------------
// Plan parsing
// ---------------------------------------------------------------------

TEST(FaultPlanTest, ParsesEveryDirective) {
  const fault::FaultPlan plan = MustParse(
      "# a chaotic afternoon\n"
      "crash 5 30\n"
      "recover 5 60\n"
      "link-down 0 1 10\n"
      "link-up 0 1 40\n"
      "host-faults 300 60\n"
      "link-faults 600 45\n"
      "loss request 0.01\n"
      "loss replicate 0.05\n"
      "loss migrate 0.04\n"
      "loss ack 0.02\n"
      "delay request 0.1 25\n"
      "quiesce 480\n");
  ASSERT_EQ(plan.scripted.size(), 4u);
  EXPECT_EQ(plan.scripted[0].kind, fault::FaultKind::kHostCrash);
  EXPECT_EQ(plan.scripted[0].host, 5);
  EXPECT_EQ(plan.scripted[0].at, SecondsToSim(30.0));
  EXPECT_EQ(plan.scripted[2].kind, fault::FaultKind::kLinkDown);
  EXPECT_EQ(plan.scripted[2].link_a, 0);
  EXPECT_EQ(plan.scripted[2].link_b, 1);
  EXPECT_DOUBLE_EQ(plan.host_faults.mtbf_s, 300.0);
  EXPECT_DOUBLE_EQ(plan.host_faults.mttr_s, 60.0);
  EXPECT_TRUE(plan.link_faults.enabled());
  EXPECT_DOUBLE_EQ(plan.DropProb(fault::MessageClass::kRequest), 0.01);
  EXPECT_DOUBLE_EQ(plan.DropProb(fault::MessageClass::kReplicate), 0.05);
  EXPECT_DOUBLE_EQ(plan.DropProb(fault::MessageClass::kMigrate), 0.04);
  EXPECT_DOUBLE_EQ(plan.DropProb(fault::MessageClass::kAck), 0.02);
  EXPECT_DOUBLE_EQ(plan.request_delay_prob, 0.1);
  EXPECT_EQ(plan.request_delay, SecondsToSim(0.025));
  EXPECT_EQ(plan.quiesce_at, SecondsToSim(480.0));
  EXPECT_FALSE(plan.Empty());
}

TEST(FaultPlanTest, ReportsLineNumberedErrors) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    std::istringstream in(text);
    std::string error;
    EXPECT_FALSE(fault::ParseFaultPlan(in, &error).has_value()) << text;
    EXPECT_NE(error.find(needle), std::string::npos)
        << "error was: " << error;
  };
  expect_error("loss request 1.5\n", "line 1");
  expect_error("crash 5\n", "line 1");
  expect_error("\nfrobnicate 1 2\n", "line 2");
  expect_error("crash 5 30 extra\n", "line 1");
  expect_error("host-faults 300 0\n", "line 1");
  expect_error("loss telepathy 0.5\n", "line 1");
}

TEST(FaultPlanTest, EmptyDetection) {
  EXPECT_TRUE(fault::FaultPlan{}.Empty());
  EXPECT_TRUE(MustParse("loss request 0\nquiesce 100\n").Empty());
  EXPECT_FALSE(MustParse("host-faults 300 60\n").Empty());
  EXPECT_FALSE(MustParse("crash 0 10\n").Empty());
  EXPECT_FALSE(MustParse("delay request 0.5 10\n").Empty());
}

// ---------------------------------------------------------------------
// Message-fate counters (two-node graph, injector driven directly)
// ---------------------------------------------------------------------

net::Graph TwoNodeGraph() {
  net::Graph graph(2);
  graph.AddLink(0, 1, SecondsToSim(0.01), 45e6);
  return graph;
}

TEST(FaultInjectorTest, CertainTransferLossRetriesThenAborts) {
  sim::Simulator sim;
  const net::Graph graph = TwoNodeGraph();
  fault::FaultInjector injector(MustParse("loss replicate 1\n"), graph, &sim,
                                /*seed=*/1, {});
  injector.Start();
  const core::RpcFate fate =
      injector.FateForCreateObj(1, core::CreateObjMethod::kReplicate);
  EXPECT_EQ(fate, core::RpcFate::kLost);
  // Initial send + kMaxTransferRetries resends all lost, then abort.
  EXPECT_EQ(injector.counters().transfer_messages_lost,
            fault::FaultInjector::kMaxTransferRetries + 1);
  EXPECT_EQ(injector.counters().transfer_retries,
            fault::FaultInjector::kMaxTransferRetries);
  EXPECT_EQ(injector.counters().aborted_relocations, 1);
}

TEST(FaultInjectorTest, CertainAckLossIsAcceptedAckLost) {
  sim::Simulator sim;
  const net::Graph graph = TwoNodeGraph();
  fault::FaultInjector injector(MustParse("loss ack 1\n"), graph, &sim,
                                /*seed=*/1, {});
  injector.Start();
  EXPECT_EQ(injector.FateForCreateObj(1, core::CreateObjMethod::kMigrate),
            core::RpcFate::kAcceptedAckLost);
  EXPECT_EQ(injector.counters().acks_lost, 1);
  EXPECT_EQ(injector.counters().aborted_relocations, 0);
}

TEST(FaultInjectorTest, RpcToCrashedHostIsLost) {
  sim::Simulator sim;
  const net::Graph graph = TwoNodeGraph();
  fault::FaultInjector injector(MustParse("crash 1 10\n"), graph, &sim,
                                /*seed=*/1, {});
  injector.Start();
  sim.RunUntil(SecondsToSim(20.0));
  EXPECT_FALSE(injector.HostUp(1));
  EXPECT_EQ(injector.FateForCreateObj(1, core::CreateObjMethod::kReplicate),
            core::RpcFate::kLost);
  EXPECT_EQ(injector.counters().rpcs_to_dead_hosts, 1);
  EXPECT_EQ(injector.live_hosts(), 1);
}

// ---------------------------------------------------------------------
// Driver integration
// ---------------------------------------------------------------------

driver::SimConfig ShortConfig() {
  driver::SimConfig config;
  config.duration = SecondsToSim(120.0);
  config.num_objects = 300;
  config.seed = 3;
  return config;
}

std::string DumpOf(driver::SimConfig config) {
  driver::HostingSimulation sim(std::move(config));
  return driver::ReportJson(sim.Run()).Dump(2);
}

TEST(FaultDriverTest, FaultFreeRunEmitsNoAvailabilityBlock) {
  driver::SimConfig config = ShortConfig();
  config.duration = SecondsToSim(60.0);
  driver::HostingSimulation sim(config);
  const driver::RunReport report = sim.Run();
  EXPECT_FALSE(report.faults_enabled);
  EXPECT_EQ(sim.fault_injector(), nullptr);
  const std::string dump = driver::ReportJson(report).Dump(2);
  EXPECT_EQ(dump.find("\"availability\""), std::string::npos);
}

TEST(FaultDriverTest, FloorOnlyRunIsDeterministicWithZeroedCounters) {
  driver::SimConfig config = ShortConfig();
  config.duration = SecondsToSim(60.0);
  config.replica_floor = 1;  // every object already starts at 1 replica
  driver::HostingSimulation sim(config);
  const driver::RunReport report = sim.Run();
  EXPECT_TRUE(report.faults_enabled);
  EXPECT_EQ(sim.fault_injector(), nullptr);  // plan is empty
  const driver::AvailabilityReport& a = report.availability;
  EXPECT_EQ(a.failed_requests, 0);
  EXPECT_EQ(a.host_crashes, 0);
  EXPECT_EQ(a.replicas_restored, 0);
  EXPECT_EQ(a.floor_violations, 0);
  EXPECT_EQ(a.unavailability_windows, 0);
  EXPECT_EQ(a.objects_lost, 0);
  const std::string dump = driver::ReportJson(report).Dump(2);
  EXPECT_NE(dump.find("\"availability\""), std::string::npos);
  EXPECT_EQ(dump, DumpOf(config));  // byte-reproducible
}

TEST(FaultDriverTest, ScriptedCrashOpensWindowsAndRecoveryClosesThem) {
  driver::SimConfig config = ShortConfig();
  config.faults = MustParse("crash 5 30\nrecover 5 60\n");
  driver::HostingSimulation sim(config);
  const driver::RunReport report = sim.Run();
  const driver::AvailabilityReport& a = report.availability;
  EXPECT_EQ(a.host_crashes, 1);
  EXPECT_EQ(a.host_recoveries, 1);
  // Host 5 was the sole holder of some objects for 30 simulated seconds.
  EXPECT_GT(a.unavailability_windows, 0);
  EXPECT_GT(a.failed_requests, 0);
  EXPECT_NEAR(a.mean_time_to_repair_s, 30.0, 1.0);
  EXPECT_LE(a.max_time_to_repair_s, 30.5);
  EXPECT_EQ(a.objects_unavailable_at_end, 0);
  EXPECT_EQ(a.objects_lost, 0);
}

TEST(FaultDriverTest, AckLossNeverLosesObjects) {
  driver::SimConfig config = ShortConfig();
  config.faults = MustParse("loss ack 0.5\n");
  driver::HostingSimulation sim(config);
  const driver::RunReport report = sim.Run();
  // An ack lost after the copy was accepted leaves the platform with MORE
  // copies (source keeps its replica), never fewer.
  EXPECT_GT(report.availability.acks_lost, 0);
  EXPECT_EQ(report.availability.objects_lost, 0);
}

// A 4-node ring: any single link can fail without disconnecting it.
net::Topology RingTopology() {
  net::TopologyBuilder builder;
  for (int i = 0; i < 4; ++i) {
    builder.AddNode("n" + std::to_string(i),
                    net::Region::kWesternNorthAmerica);
  }
  const SimTime delay = SecondsToSim(0.01);
  builder.Link(0, 1, delay, 45e6);
  builder.Link(1, 2, delay, 45e6);
  builder.Link(2, 3, delay, 45e6);
  builder.Link(3, 0, delay, 45e6);
  return std::move(builder).Build();
}

TEST(FaultDriverTest, LinkDownRecomputesLatencyMatrix) {
  driver::SimConfig config;
  config.duration = SecondsToSim(30.0);
  config.num_objects = 40;
  config.seed = 2;
  config.faults = MustParse("link-down 0 1 10\n");
  driver::HostingSimulation sim(config, RingTopology());
  sim.StepUntil(SecondsToSim(20.0));

  // The in-force matrix must match one computed from scratch on the
  // degraded graph (ring minus the 0-1 link).
  net::Graph degraded(4);
  const SimTime delay = SecondsToSim(0.01);
  degraded.AddLink(1, 2, delay, 45e6);
  degraded.AddLink(2, 3, delay, 45e6);
  degraded.AddLink(3, 0, delay, 45e6);
  const net::RoutingTable fresh_routing(degraded);
  const net::PathLatencyMatrix fresh(fresh_routing, degraded,
                                     config.object_bytes);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      EXPECT_EQ(sim.latency().Control(a, b), fresh.Control(a, b))
          << a << "->" << b;
      EXPECT_EQ(sim.latency().Transfer(a, b), fresh.Transfer(a, b))
          << a << "->" << b;
    }
  }
  ASSERT_NE(sim.fault_injector(), nullptr);
  EXPECT_EQ(sim.fault_injector()->counters().link_downs, 1);
  const driver::RunReport report = sim.Finalize();
  EXPECT_EQ(report.availability.objects_lost, 0);
}

TEST(FaultDriverTest, DisconnectingLinkDownIsSuppressed) {
  // A 3-node line: every link is a bridge, so the scripted fault must be
  // suppressed and routing left untouched.
  net::TopologyBuilder builder;
  for (int i = 0; i < 3; ++i) {
    builder.AddNode("n" + std::to_string(i),
                    net::Region::kWesternNorthAmerica);
  }
  const SimTime delay = SecondsToSim(0.01);
  builder.Link(0, 1, delay, 45e6);
  builder.Link(1, 2, delay, 45e6);

  driver::SimConfig config;
  config.duration = SecondsToSim(30.0);
  config.num_objects = 30;
  config.seed = 2;
  config.faults = MustParse("link-down 0 1 10\n");
  driver::HostingSimulation sim(config, std::move(builder).Build());
  const driver::RunReport report = sim.Run();
  EXPECT_EQ(report.availability.suppressed_link_faults, 1);
  EXPECT_EQ(report.availability.link_downs, 0);
  EXPECT_EQ(report.availability.objects_lost, 0);
}

TEST(FaultDriverTest, ReplicaFloorRestoredWithinOnePlacementInterval) {
  driver::SimConfig config = ShortConfig();
  config.num_objects = 200;
  config.replica_floor = 2;
  config.protocol.placement_interval = SecondsToSim(25.0);
  config.faults = MustParse("crash 3 40\nrecover 3 80\n");
  driver::HostingSimulation sim(config);
  const driver::RunReport report = sim.Run();
  const driver::AvailabilityReport& a = report.availability;

  // The first repair pass (t=25s) lifts every object to 2 replicas, so
  // the crash at t=40s never strands a sole copy: no windows, and every
  // under-floor object is repaired at the next pass.
  EXPECT_GT(a.replicas_restored, 0);
  EXPECT_EQ(a.unavailability_windows, 0);
  EXPECT_EQ(a.floor_violations, 0);
  EXPECT_EQ(a.objects_unavailable_at_end, 0);
  EXPECT_EQ(a.objects_lost, 0);
  const auto& redirectors = sim.cluster().redirectors();
  for (ObjectId x = 0; x < config.num_objects; ++x) {
    EXPECT_GE(redirectors.For(x).ReplicaCount(x), 2) << "object " << x;
  }
}

TEST(FaultDriverTest, ChaoticRunIsByteReproducibleAndConserved) {
  driver::SimConfig config = ShortConfig();
  config.num_objects = 250;
  config.duration = SecondsToSim(180.0);
  config.replica_floor = 2;
  config.protocol.placement_interval = SecondsToSim(25.0);
  config.faults = MustParse(
      "host-faults 120 20\n"
      "link-faults 240 20\n"
      "loss request 0.02\n"
      "loss replicate 0.05\n"
      "loss migrate 0.05\n"
      "loss ack 0.05\n"
      "delay request 0.1 20\n"
      "quiesce 150\n");

  driver::HostingSimulation sim(config);
  const driver::RunReport report = sim.Run();
  const driver::AvailabilityReport& a = report.availability;
  EXPECT_GT(a.host_crashes, 0);
  EXPECT_EQ(a.host_crashes, a.host_recoveries);  // quiesce healed all
  EXPECT_EQ(a.link_downs, a.link_ups);
  EXPECT_EQ(a.objects_unavailable_at_end, 0);
  EXPECT_EQ(a.objects_lost, 0);
  ASSERT_NE(sim.fault_injector(), nullptr);
  EXPECT_TRUE(sim.fault_injector()->quiesced());
  EXPECT_EQ(sim.fault_injector()->live_hosts(), net::kUunetNodeCount);

  // Same plan + same seed => bit-identical report.
  EXPECT_EQ(driver::ReportJson(report).Dump(2), DumpOf(config));
}

}  // namespace
}  // namespace radar
