// RunReport derived-figure edge inputs and the JSON document model:
// parser round trips, schema tagging, and byte-deterministic dumps.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "driver/hosting_simulation.h"
#include "driver/report_json.h"
#include "test_config.h"

namespace radar::driver {
namespace {

constexpr SimTime kBucket = SecondsToSim(60.0);

TEST(ReportDerivedTest, EmptyReportYieldsZeroFigures) {
  const RunReport report(kBucket);
  EXPECT_EQ(report.InitialBandwidthRate(), 0.0);
  EXPECT_EQ(report.EquilibriumBandwidthRate(), 0.0);
  EXPECT_EQ(report.BandwidthReductionPercent(), 0.0);
  EXPECT_EQ(report.InitialLatency(), 0.0);
  EXPECT_EQ(report.EquilibriumLatency(), 0.0);
  EXPECT_EQ(report.LatencyReductionPercent(), 0.0);
  EXPECT_LT(report.AdjustmentTimeSeconds(), 0.0);
  EXPECT_EQ(report.TotalRelocations(), 0);
}

TEST(ReportDerivedTest, SingleBucketRunHasNoReduction) {
  // A run shorter than one bucket: initial and equilibrium windows both
  // collapse onto bucket 0, so the reduction is exactly zero.
  RunReport report(kBucket);
  report.duration = SecondsToSim(30.0);
  report.traffic.AddPayload(SecondsToSim(10.0), 1000);
  report.latency.Add(SecondsToSim(10.0), 0.5);
  EXPECT_GT(report.InitialBandwidthRate(), 0.0);
  EXPECT_DOUBLE_EQ(report.InitialBandwidthRate(),
                   report.EquilibriumBandwidthRate());
  EXPECT_EQ(report.BandwidthReductionPercent(), 0.0);
  EXPECT_DOUBLE_EQ(report.InitialLatency(), 0.5);
  EXPECT_DOUBLE_EQ(report.EquilibriumLatency(), 0.5);
  EXPECT_EQ(report.LatencyReductionPercent(), 0.0);
}

TEST(ReportDerivedTest, EmptyLeadingBucketsDoNotDivideByZero) {
  // The only latency sample falls in the last bucket; the initial window
  // has buckets but zero samples and must report 0, not NaN.
  RunReport report(kBucket);
  report.duration = 8 * kBucket;
  report.latency.Add(SecondsToSim(7.0 * 60.0 + 30.0), 1.25);
  EXPECT_EQ(report.InitialLatency(), 0.0);
  EXPECT_DOUBLE_EQ(report.EquilibriumLatency(), 1.25);
  EXPECT_EQ(report.LatencyReductionPercent(), 0.0);
}

TEST(ReportDerivedTest, OscillatingTrafficNeverSettles) {
  RunReport report(kBucket);
  report.duration = 12 * kBucket;
  for (int i = 0; i < 12; ++i) {
    const SimTime t = static_cast<SimTime>(i) * kBucket + SecondsToSim(1.0);
    report.traffic.AddPayload(t, i % 2 == 0 ? 100000 : 100);
  }
  EXPECT_LT(report.AdjustmentTimeSeconds(), 0.0);
}

TEST(ReportDerivedTest, SettlingTrafficReportsAdjustmentTime) {
  RunReport report(kBucket);
  report.duration = 12 * kBucket;
  const std::int64_t levels[12] = {100000, 50000, 10000, 10000, 10000, 10000,
                                   10000,  10000, 10000, 10000, 10000, 10000};
  for (int i = 0; i < 12; ++i) {
    const SimTime t = static_cast<SimTime>(i) * kBucket + SecondsToSim(1.0);
    report.traffic.AddPayload(t, levels[i]);
  }
  const double adjustment = report.AdjustmentTimeSeconds();
  EXPECT_GE(adjustment, 0.0);
  EXPECT_LE(adjustment, SimToSeconds(report.duration));
  EXPECT_GT(report.BandwidthReductionPercent(), 50.0);
}

TEST(JsonValueTest, DumpIsCompactAndOrdered) {
  JsonValue object = JsonValue::MakeObject();
  object.Set("b", std::int64_t{1})
      .Set("a", JsonValue(true))
      .Set("nested", JsonValue::MakeArray());
  object.object().back().second.Append(JsonValue(0.5));
  object.object().back().second.Append(JsonValue());
  // Members serialize in insertion order — never sorted — so repeated
  // dumps of the same document are byte-identical.
  EXPECT_EQ(object.Dump(), R"({"b":1,"a":true,"nested":[0.5,null]})");
}

TEST(JsonValueTest, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).Dump(),
            "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(JsonValue(1.5).Dump(), "1.5");
}

TEST(JsonValueTest, StringsEscapeControlCharacters) {
  EXPECT_EQ(JsonValue("a\"b\\c\n\t\x01").Dump(),
            "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonParseTest, RoundTripsTypedValues) {
  const std::string text =
      R"({"i":-42,"d":2.5,"b":true,"n":null,"s":"xA","a":[1,2]})";
  const auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("i")->kind(), JsonValue::Kind::kInt);
  EXPECT_EQ(parsed->Find("i")->int_value(), -42);
  EXPECT_EQ(parsed->Find("d")->kind(), JsonValue::Kind::kDouble);
  EXPECT_DOUBLE_EQ(parsed->Find("d")->double_value(), 2.5);
  EXPECT_TRUE(parsed->Find("b")->bool_value());
  EXPECT_TRUE(parsed->Find("n")->is_null());
  EXPECT_EQ(parsed->Find("s")->string_value(), "xA");
  EXPECT_EQ(parsed->Find("a")->array().size(), 2u);
  EXPECT_EQ(parsed->Dump(), text);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ParseJson("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseJson("[1,]").has_value());
  EXPECT_FALSE(ParseJson("\"unterminated").has_value());
  EXPECT_FALSE(ParseJson("{} trailing").has_value());
  EXPECT_FALSE(ParseJson("").has_value());
}

TEST(ReportJsonTest, CarriesSchemaAndMatchesReportFields) {
  SimConfig config = testing::ScaledPaperConfig(20.0);
  config.duration = SecondsToSim(300.0);
  const RunReport report = HostingSimulation(config).Run();
  const JsonValue json = ReportJson(report);

  ASSERT_NE(json.Find("schema"), nullptr);
  EXPECT_EQ(json.Find("schema")->string_value(), kReportSchema);
  EXPECT_EQ(json.Find("workload")->string_value(), report.workload_name);
  EXPECT_EQ(json.Find("duration_us")->int_value(),
            static_cast<std::int64_t>(report.duration));

  const JsonValue* totals = json.Find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->Find("requests")->int_value(), report.total_requests);
  EXPECT_EQ(totals->Find("geo_replications")->int_value(),
            report.geo_replications);
  EXPECT_DOUBLE_EQ(totals->Find("final_avg_replicas")->double_value(),
                   report.final_avg_replicas);
  EXPECT_EQ(totals->Find("latency")->Find("count")->int_value(),
            report.latency_stats.count());

  const JsonValue* derived = json.Find("derived");
  ASSERT_NE(derived, nullptr);
  EXPECT_DOUBLE_EQ(derived->Find("equilibrium_latency_s")->double_value(),
                   report.EquilibriumLatency());
  EXPECT_DOUBLE_EQ(
      derived->Find("bandwidth_reduction_percent")->double_value(),
      report.BandwidthReductionPercent());

  const JsonValue* series = json.Find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->Find("payload_byte_hops")->array().size(),
            report.traffic.payload().num_buckets());
}

TEST(ReportJsonTest, DumpParseDumpIsByteStable) {
  SimConfig config = testing::ScaledPaperConfig(20.0);
  config.duration = SecondsToSim(300.0);
  config.workload = WorkloadKind::kRegional;
  const RunReport report = HostingSimulation(config).Run();
  const std::string first = ReportJson(report).Dump(2);
  std::string error;
  const auto parsed = ParseJson(first, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Dump(2), first);
  // Serializing the same report twice is also byte-identical (no wall
  // clock, locale, or pointer state leaks into the text).
  EXPECT_EQ(ReportJson(report).Dump(2), first);
}

}  // namespace
}  // namespace radar::driver
