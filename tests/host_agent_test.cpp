// Unit tests for HostAgent: access counting along preference paths, load
// measurement, the Sec. 2.1 load estimates, and CreateObj admission
// (Fig. 4).
#include <gtest/gtest.h>

#include "core/host_agent.h"
#include "fake_context.h"

namespace radar::core {
namespace {

using testing::FakeContext;

ProtocolParams TestParams() {
  ProtocolParams p;  // paper defaults
  return p;
}

class HostAgentTest : public ::testing::Test {
 protected:
  HostAgentTest() : params_(TestParams()), agent_(0, 8, &params_) {}

  ProtocolParams params_;
  HostAgent agent_;
};

TEST_F(HostAgentTest, InitialReplicaState) {
  agent_.AddInitialReplica(7);
  EXPECT_TRUE(agent_.HasObject(7));
  EXPECT_FALSE(agent_.HasObject(8));
  EXPECT_EQ(agent_.Affinity(7), 1);
  EXPECT_EQ(agent_.Affinity(8), 0);
  EXPECT_EQ(agent_.NumObjects(), 1u);
}

TEST_F(HostAgentTest, ObjectsSortedAscending) {
  agent_.AddInitialReplica(5);
  agent_.AddInitialReplica(1);
  agent_.AddInitialReplica(3);
  EXPECT_EQ(agent_.Objects(), (std::vector<ObjectId>{1, 3, 5}));
}

TEST_F(HostAgentTest, RecordServicedCountsEveryPathNode) {
  agent_.AddInitialReplica(1);
  agent_.RecordServiced(1, {0, 2, 5});
  agent_.RecordServiced(1, {0, 2, 6});
  EXPECT_EQ(agent_.AccessCount(1, 0), 2u);  // self: total access count
  EXPECT_EQ(agent_.AccessCount(1, 2), 2u);
  EXPECT_EQ(agent_.AccessCount(1, 5), 1u);
  EXPECT_EQ(agent_.AccessCount(1, 6), 1u);
  EXPECT_EQ(agent_.AccessCount(1, 7), 0u);
}

TEST_F(HostAgentTest, SelfOnlyPathForLocalGateway) {
  agent_.AddInitialReplica(1);
  agent_.RecordServiced(1, {0});
  EXPECT_EQ(agent_.AccessCount(1, 0), 1u);
}

TEST_F(HostAgentTest, MeasuredLoadIsServicedRate) {
  agent_.AddInitialReplica(1);
  agent_.AddInitialReplica(2);
  for (int i = 0; i < 60; ++i) agent_.RecordServiced(1, {0});
  for (int i = 0; i < 40; ++i) agent_.RecordServiced(2, {0});
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  EXPECT_DOUBLE_EQ(agent_.measured_load(), 5.0);  // 100 req / 20 s
  EXPECT_DOUBLE_EQ(agent_.ObjectLoad(1), 3.0);
  EXPECT_DOUBLE_EQ(agent_.ObjectLoad(2), 2.0);
  EXPECT_DOUBLE_EQ(agent_.UnitLoad(1), 3.0);
}

TEST_F(HostAgentTest, MeasurementIntervalsAreDisjoint) {
  agent_.AddInitialReplica(1);
  for (int i = 0; i < 20; ++i) agent_.RecordServiced(1, {0});
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  EXPECT_DOUBLE_EQ(agent_.measured_load(), 1.0);
  // No requests in the second interval.
  agent_.OnMeasurementTick(SecondsToSim(40.0));
  EXPECT_DOUBLE_EQ(agent_.measured_load(), 0.0);
}

TEST_F(HostAgentTest, UntrackedServiceCountsTowardHostLoadOnly) {
  agent_.AddInitialReplica(1);
  for (int i = 0; i < 10; ++i) agent_.RecordServicedUntracked();
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  EXPECT_DOUBLE_EQ(agent_.measured_load(), 0.5);
  EXPECT_DOUBLE_EQ(agent_.ObjectLoad(1), 0.0);
}

TEST_F(HostAgentTest, UnitLoadDividesByAffinity) {
  agent_.AddInitialReplica(1);
  // Raise affinity to 2 via an accepted CreateObj.
  EXPECT_TRUE(agent_
                  .HandleCreateObj(CreateObjMethod::kReplicate, 1, 0.0,
                                   SecondsToSim(1.0))
                  .accepted);
  EXPECT_EQ(agent_.Affinity(1), 2);
  for (int i = 0; i < 40; ++i) agent_.RecordServiced(1, {0});
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  EXPECT_DOUBLE_EQ(agent_.ObjectLoad(1), 2.0);
  EXPECT_DOUBLE_EQ(agent_.UnitLoad(1), 1.0);
}

TEST_F(HostAgentTest, CreateObjRefusedAboveLowWatermark) {
  // Drive measured load above lw (80 req/s): 1700 requests in 20 s = 85.
  agent_.AddInitialReplica(1);
  for (int i = 0; i < 1700; ++i) agent_.RecordServiced(1, {0});
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  ASSERT_GT(agent_.measured_load(), params_.low_watermark);
  EXPECT_FALSE(agent_
                   .HandleCreateObj(CreateObjMethod::kReplicate, 9, 1.0,
                                    SecondsToSim(21.0))
                   .accepted);
  EXPECT_FALSE(agent_.HasObject(9));
}

TEST_F(HostAgentTest, MigrationRefusedWhenBoundWouldCrossHighWatermark) {
  // Load 60 (below lw). A migration with unit load 10 has an upper-bound
  // increase of 40, crossing hw = 90 -> refuse; a replication with the
  // same load must be accepted (bootstrap rule).
  agent_.AddInitialReplica(1);
  for (int i = 0; i < 1200; ++i) agent_.RecordServiced(1, {0});
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  ASSERT_DOUBLE_EQ(agent_.measured_load(), 60.0);
  EXPECT_FALSE(agent_
                   .HandleCreateObj(CreateObjMethod::kMigrate, 9, 10.0,
                                    SecondsToSim(21.0))
                   .accepted);
  EXPECT_TRUE(agent_
                  .HandleCreateObj(CreateObjMethod::kReplicate, 9, 10.0,
                                   SecondsToSim(21.0))
                  .accepted);
}

TEST_F(HostAgentTest, AcceptanceRaisesAdmissionEstimateByFourUnitLoads) {
  EXPECT_TRUE(agent_
                  .HandleCreateObj(CreateObjMethod::kMigrate, 9, 2.5,
                                   SecondsToSim(1.0))
                  .accepted);
  EXPECT_DOUBLE_EQ(agent_.AdmissionLoad(), 10.0);
  EXPECT_DOUBLE_EQ(agent_.measured_load(), 0.0);
}

TEST_F(HostAgentTest, BulkAcceptancesAccumulateEstimate) {
  for (ObjectId x = 10; x < 15; ++x) {
    EXPECT_TRUE(agent_
                    .HandleCreateObj(CreateObjMethod::kMigrate, x, 3.0,
                                     SecondsToSim(1.0))
                    .accepted);
  }
  EXPECT_DOUBLE_EQ(agent_.AdmissionLoad(), 60.0);
  // The sixth acceptance would bound past hw for migrations: 60 + 4*10=100.
  EXPECT_FALSE(agent_
                   .HandleCreateObj(CreateObjMethod::kMigrate, 20, 10.0,
                                    SecondsToSim(1.0))
                   .accepted);
}

TEST_F(HostAgentTest, EstimateRevertsAfterQuietInterval) {
  EXPECT_TRUE(agent_
                  .HandleCreateObj(CreateObjMethod::kMigrate, 9, 2.0,
                                   SecondsToSim(5.0))
                  .accepted);
  EXPECT_DOUBLE_EQ(agent_.AdmissionLoad(), 8.0);
  // Interval [0, 20) contains the acquisition: the estimate must persist.
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  EXPECT_DOUBLE_EQ(agent_.AdmissionLoad(), agent_.measured_load() + 8.0);
  // Interval [20, 40) starts after the acquisition: revert to measurement.
  agent_.OnMeasurementTick(SecondsToSim(40.0));
  EXPECT_DOUBLE_EQ(agent_.AdmissionLoad(), agent_.measured_load());
}

TEST_F(HostAgentTest, DuplicateCreateIncrementsAffinityWithoutCopy) {
  agent_.AddInitialReplica(1);
  const CreateObjResponse resp = agent_.HandleCreateObj(
      CreateObjMethod::kReplicate, 1, 0.5, SecondsToSim(1.0));
  EXPECT_TRUE(resp.accepted);
  EXPECT_FALSE(resp.created_new_copy);
  EXPECT_EQ(agent_.Affinity(1), 2);
}

TEST_F(HostAgentTest, FreshCopyReportsCreatedNewCopy) {
  const CreateObjResponse resp = agent_.HandleCreateObj(
      CreateObjMethod::kReplicate, 1, 0.5, SecondsToSim(1.0));
  EXPECT_TRUE(resp.accepted);
  EXPECT_TRUE(resp.created_new_copy);
}

TEST_F(HostAgentTest, NewReplicaInheritsUnitLoadEstimate) {
  agent_.HandleCreateObj(CreateObjMethod::kMigrate, 9, 1.5, SecondsToSim(1.0));
  EXPECT_DOUBLE_EQ(agent_.ObjectLoad(9), 1.5);
}

TEST_F(HostAgentTest, UnitAccessRateUsesEpochAndAffinity) {
  agent_.AddInitialReplica(1);
  for (int i = 0; i < 100; ++i) agent_.RecordServiced(1, {0});
  // 100 requests over a 100 s epoch at affinity 1 -> 1 req/s.
  EXPECT_DOUBLE_EQ(agent_.UnitAccessRate(1, SecondsToSim(100.0)), 1.0);
}

TEST_F(HostAgentTest, UnitAccessRateOfFreshReplicaUsesAcquisitionTime) {
  // Acquired at t=90 with 10 requests by t=100: rate is 1/s, not 0.1/s.
  agent_.HandleCreateObj(CreateObjMethod::kMigrate, 9, 0.0,
                         SecondsToSim(90.0));
  for (int i = 0; i < 10; ++i) agent_.RecordServiced(9, {0});
  EXPECT_DOUBLE_EQ(agent_.UnitAccessRate(9, SecondsToSim(100.0)), 1.0);
}

TEST_F(HostAgentTest, OffloadLoadLowerBoundedByShedding) {
  FakeContext ctx(8);
  ctx.redirector.RegisterObject(1, 0);
  agent_.AddInitialReplica(1);
  for (int i = 0; i < 2000; ++i) agent_.RecordServiced(1, {0});
  agent_.OnMeasurementTick(SecondsToSim(20.0));
  EXPECT_DOUBLE_EQ(agent_.measured_load(), 100.0);
  EXPECT_DOUBLE_EQ(agent_.OffloadLoad(), 100.0);
  // Run a placement round: load 100 > hw, offload sheds toward node 5.
  ctx.offload_recipient = 5;
  ctx.reported_load = 0.0;
  const PlacementStats stats = agent_.RunPlacement(ctx, SecondsToSim(100.0));
  EXPECT_TRUE(stats.offloading_mode);
  EXPECT_GT(stats.offload_replications + stats.offload_migrations, 0);
  EXPECT_LT(agent_.OffloadLoad(), 100.0);
}

TEST(HostAgentDeathTest, PathMustStartAtSelf) {
  ProtocolParams params;
  HostAgent agent(0, 4, &params);
  agent.AddInitialReplica(1);
  EXPECT_DEATH(agent.RecordServiced(1, {2, 0}), "preference path");
}

TEST(HostAgentDeathTest, ServiceForUnknownObjectAborts) {
  ProtocolParams params;
  HostAgent agent(0, 4, &params);
  EXPECT_DEATH(agent.RecordServiced(9, {0}), "not hosted");
}

TEST(HostAgentDeathTest, DoubleInitialReplicaAborts) {
  ProtocolParams params;
  HostAgent agent(0, 4, &params);
  agent.AddInitialReplica(1);
  EXPECT_DEATH(agent.AddInitialReplica(1), "already present");
}

}  // namespace
}  // namespace radar::core
