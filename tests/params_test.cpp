// Boundary tests for ProtocolParams::IsStable() and CheckStructure()
// (Sec. 4.2, Table 1). The stability conditions are strict inequalities —
// sitting exactly on a boundary (4u == m, lw == hw, migr_ratio == 0.5)
// must count as unstable, and structural nonsense must abort.
#include "core/params.h"

#include <gtest/gtest.h>

namespace radar::core {
namespace {

TEST(ProtocolParamsTest, DefaultsAreStableAndStructurallyValid) {
  const ProtocolParams params;
  EXPECT_TRUE(params.IsStable());
  params.CheckStructure();  // must not abort
}

TEST(ProtocolParamsTest, ExactlyFourUEqualsMIsUnstable) {
  // Theorem 5 needs m > 4u strictly; m == 4u admits oscillation.
  ProtocolParams params;
  params.deletion_threshold_u = 0.05;
  params.replication_threshold_m = 4.0 * params.deletion_threshold_u;
  EXPECT_FALSE(params.IsStable());
  params.replication_threshold_m =
      4.0 * params.deletion_threshold_u * 1.0001;
  EXPECT_TRUE(params.IsStable());
}

TEST(ProtocolParamsTest, EqualWatermarksAreUnstable) {
  ProtocolParams params;
  params.low_watermark = params.high_watermark;
  EXPECT_FALSE(params.IsStable());
  // Inverted watermarks are unstable too, but still structurally legal —
  // ablations deliberately run such configurations.
  params.low_watermark = params.high_watermark + 1.0;
  EXPECT_FALSE(params.IsStable());
  params.CheckStructure();
}

TEST(ProtocolParamsTest, MigrRatioExactlyHalfIsUnstable) {
  // migr_ratio must strictly exceed 0.5 or two hosts can each see "more
  // than half" of the requests and ping-pong the object.
  ProtocolParams params;
  params.migr_ratio = 0.5;
  params.repl_ratio = 0.25;
  EXPECT_FALSE(params.IsStable());
  params.migr_ratio = 0.5001;
  EXPECT_TRUE(params.IsStable());
}

TEST(ProtocolParamsTest, ReplRatioMustBeStrictlyBelowMigrRatio) {
  ProtocolParams params;
  params.repl_ratio = params.migr_ratio;
  EXPECT_FALSE(params.IsStable());
}

TEST(ProtocolParamsTest, DistributionConstantAtOneIsUnstable) {
  ProtocolParams params;
  params.distribution_constant = 1.0;
  EXPECT_FALSE(params.IsStable());
}

TEST(ProtocolParamsTest, ZeroDeletionThresholdIsStructurallyValid) {
  // u == 0 means "never delete for idleness"; legal, and stable as long
  // as m stays positive.
  ProtocolParams params;
  params.deletion_threshold_u = 0.0;
  params.CheckStructure();
  EXPECT_TRUE(params.IsStable());
}

TEST(ProtocolParamsDeathTest, NegativeDeletionThresholdAborts) {
  ProtocolParams params;
  params.deletion_threshold_u = -0.01;
  EXPECT_DEATH(params.CheckStructure(), "deletion_threshold_u");
}

TEST(ProtocolParamsDeathTest, ZeroReplicationThresholdAborts) {
  ProtocolParams params;
  params.replication_threshold_m = 0.0;
  EXPECT_DEATH(params.CheckStructure(), "replication_threshold_m");
}

TEST(ProtocolParamsDeathTest, ZeroPlacementIntervalAborts) {
  ProtocolParams params;
  params.placement_interval = 0;
  EXPECT_DEATH(params.CheckStructure(), "placement_interval");
}

TEST(ProtocolParamsDeathTest, NegativeMeasurementIntervalAborts) {
  ProtocolParams params;
  params.measurement_interval = SecondsToSim(-20.0);
  EXPECT_DEATH(params.CheckStructure(), "measurement_interval");
}

TEST(ProtocolParamsDeathTest, MigrRatioAboveOneAborts) {
  ProtocolParams params;
  params.migr_ratio = 1.5;
  EXPECT_DEATH(params.CheckStructure(), "migr_ratio");
}

TEST(ProtocolParamsDeathTest, ZeroWatermarkAborts) {
  ProtocolParams params;
  params.high_watermark = 0.0;
  EXPECT_DEATH(params.CheckStructure(), "high_watermark");
}

}  // namespace
}  // namespace radar::core
