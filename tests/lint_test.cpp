// Tests for the radar_lint pass framework (tools/lint/linter.h): each
// rule fires on a minimal violating snippet, stays quiet on idiomatic
// code, the tree walker rejects the checked-in violating fixture, and the
// shard-readiness report round-trips as radar.analysis/1 JSON.
#include "lint/linter.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/analysis_json.h"

namespace radar::lint {
namespace {

std::vector<std::string> RulesOf(const std::vector<Violation>& violations) {
  std::vector<std::string> rules;
  rules.reserve(violations.size());
  for (const auto& v : violations) rules.push_back(v.rule);
  return rules;
}

bool HasRule(const std::vector<Violation>& violations,
             const std::string& rule) {
  const auto rules = RulesOf(violations);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

FileKind Header() { return {/*is_header=*/true, false}; }
FileKind Source() { return {/*is_header=*/false, false}; }

// ---------------------------------------------------------------------
// Comment/string stripping
// ---------------------------------------------------------------------

TEST(StripTest, BlanksLineCommentsButKeepsNewlines) {
  const std::string stripped =
      StripCommentsAndStrings("int a;  // rand()\nint b;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 2);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(StripTest, BlanksBlockCommentsAcrossLines) {
  const std::string stripped =
      StripCommentsAndStrings("/* rand()\n   assert(x) */ int a;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("assert"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 2);
}

TEST(StripTest, BlanksStringAndCharLiteralBodies) {
  const std::string stripped = StripCommentsAndStrings(
      "auto s = \"call rand() now\"; char c = 'x';\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find('x'), std::string::npos);
}

TEST(StripTest, EscapedQuoteDoesNotEndString) {
  const std::string stripped =
      StripCommentsAndStrings("auto s = \"a \\\" rand() b\"; int k;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int k;"), std::string::npos);
}

TEST(StripTest, RawStringBlankedEntirely) {
  // The old state machine treated \" inside a raw string as an escape,
  // mis-tracked the terminator, and could leave literal text visible.
  const std::string stripped = StripCommentsAndStrings(
      "auto s = R\"(a \\\" rand() b)\"; int k;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int k;"), std::string::npos);
}

TEST(StripTest, RawStringDelimiterLookalikeDoesNotSwallowCode) {
  // )" inside an R"ab(...)ab" literal is NOT the terminator; the code
  // after the real terminator must survive stripping.
  const std::string stripped = StripCommentsAndStrings(
      "auto s = R\"ab(x)\" inside)ab\"; int keep_me;\n");
  EXPECT_EQ(stripped.find("inside"), std::string::npos);
  EXPECT_NE(stripped.find("int keep_me;"), std::string::npos);
}

TEST(StripTest, SplicedStringKeepsNewlineCount) {
  // The old stripper consumed the backslash-newline inside a string
  // without re-emitting the newline, shifting every later line number.
  const std::string stripped =
      StripCommentsAndStrings("auto s = \"ab\\\ncd\"; int k;\n");
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 2);
  EXPECT_NE(stripped.find("int k;"), std::string::npos);
}

TEST(StripTest, SplicedLineCommentBlanksContinuation) {
  // A line comment ending in a backslash continues onto the next physical
  // line; the old stripper ended it at the newline and leaked the
  // continuation as code.
  const std::string stripped =
      StripCommentsAndStrings("// note \\\nrand()\nint k;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int k;"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 3);
}

// ---------------------------------------------------------------------
// Banned constructs
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsRandAndSrandCalls) {
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "int x = rand() % 7;\n", Source()),
                      "banned-rand"));
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "srand(42);\n", Source()),
                      "banned-rand"));
}

TEST(LintSourceTest, IgnoresIdentifiersContainingRand) {
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "int strand(int); int x = strand(3);\n", Source()),
      "banned-rand"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "double rand_ratio = Grand(3);\n", Source()),
      "banned-rand"));
}

TEST(LintSourceTest, FlagsCoutAndCerr) {
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "std::cout << 1;\n", Source()),
                      "banned-iostream"));
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "std::cerr << 1;\n", Source()),
                      "banned-iostream"));
}

TEST(LintSourceTest, FlagsRawAssertButNotStaticAssert) {
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "assert(n > 0);\n", Source()),
                      "banned-assert"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "static_assert(sizeof(int) == 4);\n", Source()),
      "banned-assert"));
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "RADAR_CHECK(n > 0);\n", Source()),
                       "banned-assert"));
}

TEST(LintSourceTest, FlagsUsingNamespaceInHeadersOnly) {
  EXPECT_TRUE(HasRule(
      LintSource("f.h", "#pragma once\nusing namespace std;\n", Header()),
      "using-namespace-in-header"));
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "using namespace std;\n", Source()),
                       "using-namespace-in-header"));
}

TEST(LintSourceTest, RequiresPragmaOnceInHeaders) {
  EXPECT_TRUE(HasRule(LintSource("f.h", "int f();\n", Header()),
                      "missing-pragma-once"));
  EXPECT_FALSE(HasRule(LintSource("f.h", "#pragma once\nint f();\n", Header()),
                       "missing-pragma-once"));
  // A #pragma once that only appears inside a comment does not count.
  EXPECT_TRUE(HasRule(
      LintSource("f.h", "// #pragma once\nint f();\n", Header()),
      "missing-pragma-once"));
}

// ---------------------------------------------------------------------
// Thread confinement
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsThreadCreationOutsideRunner) {
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "std::thread t([] {});\n", Source()),
      "thread-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "std::jthread t([] {});\n", Source()),
      "thread-confinement"));
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "worker.detach();\n", Source()),
                      "thread-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("f.h", "#pragma once\nstd::thread member_;\n", Header()),
      "thread-confinement"));
}

TEST(LintSourceTest, ThreadConfinementQuietOnLookalikes) {
  // std::this_thread (sleeps, yields) is not thread creation.
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "std::this_thread::yield();\n", Source()),
      "thread-confinement"));
  // Identifiers merely containing "detach" are not detach() calls.
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "bool detached = IsDetached(x);\n", Source()),
      "thread-confinement"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "#include <thread>\n", Source()),
      "thread-confinement"));
}

TEST(LintSourceTest, RunnerFilesMayCreateThreads) {
  FileKind runner_kind;
  runner_kind.allow_threads = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/runner/thread_pool.cpp",
                 "std::thread t([] {});\nt.detach();\n", runner_kind),
      "thread-confinement"));
}

// ---------------------------------------------------------------------
// std::function ban in simulation code
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsStdFunctionInSimCode) {
  FileKind sim_kind;
  sim_kind.forbid_std_function = true;
  EXPECT_TRUE(HasRule(
      LintSource("src/sim/event_queue.h",
                 "std::function<void()> fn_;\n", sim_kind),
      "sim-no-std-function"));
}

TEST(LintSourceTest, StdFunctionAllowedOutsideSim) {
  // Driver config callbacks are cold-path; the ban is scoped to src/sim/.
  EXPECT_FALSE(HasRule(
      LintSource("src/driver/config.h",
                 "#pragma once\nstd::function<int(int)> hook;\n", Header()),
      "sim-no-std-function"));
}

TEST(LintSourceTest, StdFunctionBanQuietOnLookalikes) {
  FileKind sim_kind;
  sim_kind.forbid_std_function = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/sim/simulator.h",
                 "using PeriodicFn = InplaceFunction<void(SimTime), 64>;\n",
                 sim_kind),
      "sim-no-std-function"));
  // Mentions inside comments are stripped before token checks.
  EXPECT_FALSE(HasRule(
      LintSource("src/sim/inplace_function.h",
                 "#pragma once\n// replaces std::function on the hot path\n",
                 sim_kind),
      "sim-no-std-function"));
}

// ---------------------------------------------------------------------
// Shard confinement: synchronization primitives in src/sim/
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsSyncPrimitivesInSimCode) {
  FileKind sim_kind;
  sim_kind.forbid_std_function = true;
  EXPECT_TRUE(HasRule(
      LintSource("src/sim/bad.cpp", "std::mutex lock_;\n", sim_kind),
      "shard-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("src/sim/bad.cpp", "std::atomic<int> n_{0};\n", sim_kind),
      "shard-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("src/sim/bad.cpp",
                 "void F() { std::lock_guard<std::mutex> g(m_); }\n",
                 sim_kind),
      "shard-confinement"));
}

TEST(LintSourceTest, SyncAllowedInMailboxAndBarrierFiles) {
  // The mailbox/barrier carve-out: the same tokens are fine when the file
  // kind says so (AnalyzeTree sets this for sim/mailbox.h, sim/shard.h,
  // sim/shard.cpp), and src/runner/ never forbids them.
  FileKind mailbox_kind;
  mailbox_kind.forbid_std_function = true;
  mailbox_kind.allow_shard_sync = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/sim/mailbox.h",
                 "#pragma once\nstd::atomic<int> fence_{0};\n", mailbox_kind),
      "shard-confinement"));
  EXPECT_FALSE(HasRule(
      LintSource("src/runner/pool.cpp", "std::mutex lock_;\n", Source()),
      "shard-confinement"));
}

TEST(LintSourceTest, ShardConfinementQuietOnLookalikes) {
  FileKind sim_kind;
  sim_kind.forbid_std_function = true;
  // Not std:: qualified, and mentions in comments, do not fire.
  EXPECT_FALSE(HasRule(
      LintSource("src/sim/x.cpp",
                 "int mutex = 0;\n// std::mutex would be a violation\n",
                 sim_kind),
      "shard-confinement"));
}

// ---------------------------------------------------------------------
// Seq reservation: keyed event pushes stay inside the protocol
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsKeyedPushOutsideReservationProtocol) {
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp", "sim->ScheduleKeyedAt(0, 7u, fn);\n",
                 Source()),
      "seq-reservation"));
  EXPECT_TRUE(HasRule(
      LintSource("src/driver/hosting_simulation.cpp",
                 "queue.PushAtSeq(when, key, fn);\n", Source()),
      "seq-reservation"));
}

TEST(LintSourceTest, KeyedPushAllowedInSimAndShardedEngine) {
  FileKind keyed_kind;
  keyed_kind.allow_keyed_push = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/sim/simulator.h",
                 "#pragma once\nvoid F() { queue_.PushAtSeq(t, k, fn); }\n",
                 keyed_kind),
      "seq-reservation"));
  EXPECT_FALSE(HasRule(
      LintSource("src/driver/shard_exec.cpp",
                 "ss.sim.ScheduleKeyedAt(when, key, fn);\n", keyed_kind),
      "seq-reservation"));
}

TEST(LintSourceTest, SeqReservationQuietOnNonCalls) {
  // Declarations and mentions without a call do not fire: the rule is
  // about call sites, the declarations live in sim/ headers anyway.
  EXPECT_FALSE(HasRule(
      LintSource("src/core/x.cpp",
                 "// ScheduleKeyedAt is confined to sim/\nint PushAtSeq;\n",
                 Source()),
      "seq-reservation"));
}

// ---------------------------------------------------------------------
// Fault-model confinement
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsFaultParametersOutsideFaultModule) {
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp", "double mtbf_s = 600.0;\n", Source()),
      "fault-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("src/driver/x.cpp", "config.mttr = 45.0;\n", Source()),
      "fault-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("src/net/x.h", "#pragma once\ndouble drop_prob[4];\n",
                 Header()),
      "fault-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp", "double request_delay_prob = 0.5;\n",
                 Source()),
      "fault-confinement"));
}

TEST(LintSourceTest, FaultModuleMayNameFaultParameters) {
  FileKind fault_kind;
  fault_kind.allow_fault_injection = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/fault/fault_plan.h",
                 "#pragma once\ndouble mtbf_s = 0.0; double mttr_s = 0.0;\n"
                 "double drop_prob[4] = {};\n",
                 fault_kind),
      "fault-confinement"));
}

TEST(LintSourceTest, FaultConfinementQuietOnLookalikes) {
  // Identifier-boundary matching: these merely contain the tokens.
  EXPECT_FALSE(HasRule(
      LintSource("src/core/x.cpp", "double mtbf_scaled = Scale();\n",
                 Source()),
      "fault-confinement"));
  EXPECT_FALSE(HasRule(
      LintSource("src/core/x.cpp", "int backdrop_probe = 1;\n", Source()),
      "fault-confinement"));
  // Prose mentions are stripped with the comments.
  EXPECT_FALSE(HasRule(
      LintSource("src/driver/x.cpp", "// tune mtbf via the fault plan\n",
                 Source()),
      "fault-confinement"));
}

// ---------------------------------------------------------------------
// Hash-map ban in core protocol code
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsHashMapsInCoreCode) {
  FileKind core_kind;
  core_kind.forbid_hash_maps = true;
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.h",
                 "#pragma once\nstd::unordered_map<ObjectId, int> m_;\n",
                 core_kind),
      "core-no-hash-maps"));
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp", "std::map<NodeId, double> load_;\n",
                 core_kind),
      "core-no-hash-maps"));
}

TEST(LintSourceTest, HashMapsAllowedOutsideCore) {
  // The ban is scoped to src/core/: cold-path modules (io, analysis) may
  // still pick the container that reads best.
  EXPECT_FALSE(HasRule(
      LintSource("src/analysis/x.cpp",
                 "std::unordered_map<std::string, int> counts;\n", Source()),
      "core-no-hash-maps"));
}

TEST(LintSourceTest, HashMapBanQuietOnLookalikes) {
  FileKind core_kind;
  core_kind.forbid_hash_maps = true;
  // SlabMap and prose mentions must not trip the token check.
  EXPECT_FALSE(HasRule(
      LintSource("src/core/x.h",
                 "#pragma once\nSlabMap<ReplicaRecord> records_;\n",
                 core_kind),
      "core-no-hash-maps"));
  EXPECT_FALSE(HasRule(
      LintSource("src/core/x.cpp",
                 "// replaced std::unordered_map with SlabMap (§12)\n",
                 core_kind),
      "core-no-hash-maps"));
}

// ---------------------------------------------------------------------
// RNG confinement in src/net/
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsRngInNetCode) {
  FileKind net_kind;
  net_kind.forbid_net_rng = true;
  EXPECT_TRUE(HasRule(
      LintSource("src/net/routing.cpp", "Rng rng(7);\n", net_kind),
      "net-rng-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("src/net/graph.cpp",
                 "std::uint64_t s = 1; auto x = SplitMix64(s);\n", net_kind),
      "net-rng-confinement"));
}

TEST(LintSourceTest, TopologyGeneratorMayUseRng) {
  // net/topology_gen.cpp is the one src/net/ file classified without the
  // flag: the generator owns all net-side randomness.
  EXPECT_FALSE(HasRule(
      LintSource("src/net/topology_gen.cpp", "Rng rng(7);\n", Source()),
      "net-rng-confinement"));
}

TEST(LintSourceTest, NetRngBanQuietOnLookalikesAndOtherModules) {
  FileKind net_kind;
  net_kind.forbid_net_rng = true;
  // Prose mentions and identifier-boundary lookalikes stay quiet.
  EXPECT_FALSE(HasRule(
      LintSource("src/net/routing.cpp",
                 "// SplitMix64-style mix of source, via, and parent\n"
                 "std::uint64_t RngLikeMix(std::uint64_t z) { return z; }\n",
                 net_kind),
      "net-rng-confinement"));
  // Other modules (workloads, fault plans) draw from Rng by design.
  EXPECT_FALSE(HasRule(
      LintSource("src/workload/trace.cpp", "Rng rng(7);\n", Source()),
      "net-rng-confinement"));
}

// ---------------------------------------------------------------------
// Protocol-literal audit
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsProtocolThresholdLiterals) {
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "double migr_ratio = 0.6;\n", Source()),
      "protocol-literal"));
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "double repl = 1.0 / 6.0;\n", Source()),
      "protocol-literal"));
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "unsigned k = 6u;\n", Source()),
                      "protocol-literal"));
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "double u = 0.03;\n", Source()),
                      "protocol-literal"));
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "double m = 0.18;\n", Source()),
                      "protocol-literal"));
}

TEST(LintSourceTest, IgnoresNearbyNonThresholdNumbers) {
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "double x = 0.66;\n", Source()),
                       "protocol-literal"));
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "double x = 10.6;\n", Source()),
                       "protocol-literal"));
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "unsigned x = 16u;\n", Source()),
                       "protocol-literal"));
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "double x = 0.035;\n", Source()),
                       "protocol-literal"));
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "double x = 1.0 / 60.0;\n",
                                  Source()),
                       "protocol-literal"));
}

TEST(LintSourceTest, CommentedThresholdsAreFine) {
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "// the paper uses MIGR_RATIO = 0.6 here\n",
                 Source()),
      "protocol-literal"));
}

TEST(LintSourceTest, ParamsHeaderMayDefineThresholds) {
  FileKind params_kind;
  params_kind.is_header = true;
  params_kind.allow_protocol_literals = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/core/params.h",
                 "#pragma once\ndouble migr_ratio = 0.6;\n", params_kind),
      "protocol-literal"));
}

TEST(LintSourceTest, SplicedBannedCallIsStillSeen) {
  // Token-level analysis sees through the phase-2 splice a line/regex
  // checker cannot: "ra\<newline>nd()" is one rand token.
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "int x = ra\\\nnd();\n", Source()), "banned-rand"));
}

// ---------------------------------------------------------------------
// Deferred-concurrency confinement (std::async / future / promise / omp)
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsDeferredConcurrencyOutsideRunner) {
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "auto h = std::async(Work);\n", Source()),
      "thread-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "std::future<int> pending_;\n", Source()),
      "thread-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "std::promise<int> p;\n", Source()),
      "thread-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "#pragma omp parallel for\n", Source()),
      "thread-confinement"));
}

TEST(LintSourceTest, DeferredConcurrencyAllowedInRunner) {
  FileKind runner_kind;
  runner_kind.allow_threads = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/runner/thread_pool.cpp",
                 "std::future<int> f = std::async(Work);\n"
                 "std::promise<int> p;\n#pragma omp parallel\n",
                 runner_kind),
      "thread-confinement"));
}

TEST(LintSourceTest, DeferredConcurrencyQuietOnLookalikes) {
  // `omp` as a plain identifier (no #pragma) and non-std future-like
  // names are not concurrency.
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "int omp = 1;\n", Source()),
                       "thread-confinement"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "my::future<int> pending_;\n", Source()),
      "thread-confinement"));
}

// ---------------------------------------------------------------------
// Nondeterminism audit
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsRangedForOverUnorderedContainer) {
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp",
                 "std::unordered_map<int, double> load_;\n"
                 "double Total() {\n"
                 "  double t = 0;\n"
                 "  for (const auto& [k, v] : load_) t += v;\n"
                 "  return t;\n"
                 "}\n",
                 Source()),
      "nondet-unordered-iteration"));
}

TEST(LintSourceTest, FlagsBeginIterationOverUnorderedContainer) {
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp",
                 "void F(const std::unordered_set<int>& seen) {\n"
                 "  auto it = seen.begin();\n"
                 "  (void)it;\n"
                 "}\n",
                 Source()),
      "nondet-unordered-iteration"));
}

TEST(LintSourceTest, UnorderedLookupAndVectorIterationAreFine) {
  // Point lookups don't depend on iteration order.
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp",
                 "std::unordered_map<int, double> load_;\n"
                 "double Get(int k) { return load_[k]; }\n",
                 Source()),
      "nondet-unordered-iteration"));
  // Ordered containers iterate deterministically.
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp",
                 "std::vector<int> v_;\n"
                 "int Sum() {\n"
                 "  int t = 0;\n"
                 "  for (int x : v_) t += x;\n"
                 "  return t + *v_.begin();\n"
                 "}\n",
                 Source()),
      "nondet-unordered-iteration"));
}

TEST(LintSourceTest, FlagsPointerKeyedOrderedContainers) {
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "std::set<Node*> live_;\n", Source()),
      "nondet-pointer-key"));
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "std::map<const Node*, int> refs_;\n", Source()),
      "nondet-pointer-key"));
  // Id-keyed containers are deterministic; pointer VALUES are fine.
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "std::map<int, Node*> by_id_;\n", Source()),
      "nondet-pointer-key"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "std::set<NodeId> ids_;\n", Source()),
      "nondet-pointer-key"));
}

TEST(LintSourceTest, FlagsStdHashOfPointerType) {
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "std::size_t h = std::hash<Node*>{}(n);\n",
                 Source()),
      "nondet-pointer-hash"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "std::size_t h = std::hash<int>{}(k);\n", Source()),
      "nondet-pointer-hash"));
}

TEST(LintSourceTest, FlagsWallClockOutsideRunner) {
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp",
                 "auto t = std::chrono::steady_clock::now();\n", Source()),
      "nondet-wall-clock"));
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "long t = time(nullptr);\n", Source()),
      "nondet-wall-clock"));
}

TEST(LintSourceTest, RunnerMayReadWallClocks) {
  FileKind runner_kind;
  runner_kind.allow_threads = true;
  runner_kind.allow_wall_clock = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/runner/sweep_runner.cpp",
                 "auto t = std::chrono::steady_clock::now();\n", runner_kind),
      "nondet-wall-clock"));
}

TEST(LintSourceTest, WallClockQuietOnLookalikes) {
  // The simulation's own clock and time-like identifiers are fine.
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "SimTime now = sim_.Now();\n", Source()),
      "nondet-wall-clock"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "double service_time = ServiceTime(x);\n",
                 Source()),
      "nondet-wall-clock"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "#include <ctime>\n", Source()),
      "nondet-wall-clock"));
}

// ---------------------------------------------------------------------
// Transport confinement: syscalls stay behind the Transport seam
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsSocketSyscallsOutsideTransport) {
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp", "int fd = socket(2, 1, 0);\n", Source()),
      "transport-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("src/driver/x.cpp", "poll(fds, 3, 100);\n", Source()),
      "transport-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("src/sim/x.cpp", "fcntl(fd, F_SETFL, flags);\n", Source()),
      "transport-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("src/workload/x.cpp", "send(fd, buf, n, 0);\n", Source()),
      "transport-confinement"));
}

TEST(LintSourceTest, TransportAndBinlogMaySyscallAndReadClocks) {
  FileKind transport_kind;
  transport_kind.allow_transport_syscalls = true;
  transport_kind.allow_wall_clock = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/transport/tcp_transport.cpp",
                 "int fd = socket(2, 1, 0);\npoll(fds, 3, 100);\n"
                 "clock_gettime(0, &ts);\n",
                 transport_kind),
      "transport-confinement"));
  EXPECT_FALSE(HasRule(
      LintSource("src/binlog/binlog.cpp", "fsync(fd_);\nftruncate(fd_, 0);\n",
                 transport_kind),
      "transport-confinement"));
}

TEST(LintSourceTest, TransportConfinementQuietOnLookalikes) {
  // Method calls and non-call mentions use different tokens or no call
  // position: the brains' Transport::Send / PollOnce wrappers are fine.
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "transport_->Send(to, msg);\n", Source()),
      "transport-confinement"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "transport.PollOnce(20);\n", Source()),
      "transport-confinement"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "// socket() is confined to src/transport/\n",
                 Source()),
      "transport-confinement"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "bool shutdown = node.shutdown_requested();\n",
                 Source()),
      "transport-confinement"));
}

// ---------------------------------------------------------------------
// Mutable-global audit
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsPlainMutableGlobal) {
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp", "int g_count = 0;\n", Source()),
      "mutable-global"));
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp",
                 "namespace radar {\nnamespace {\nstd::vector<int> g_list;\n"
                 "}\n}\n",
                 Source()),
      "mutable-global"));
  // A declarator after a type body is a global of that (possibly
  // anonymous) type.
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp", "struct { int hits; } g_stats;\n",
                 Source()),
      "mutable-global"));
}

TEST(LintSourceTest, FlagsAtomicGlobalNotInWhitelist) {
  // Race-safe is necessary but not sufficient: unlisted state stays
  // invisible to the shard-split plan.
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp", "std::atomic<int> g_hits{0};\n", Source()),
      "mutable-global"));
}

TEST(LintSourceTest, WhitelistedAtomicGlobalPasses) {
  // The seed whitelist entry: common/log.cpp g_level.
  EXPECT_FALSE(HasRule(
      LintSource("src/common/log.cpp",
                 "namespace radar {\nnamespace {\n"
                 "std::atomic<LogLevel> g_level{LogLevel::kWarn};\n"
                 "}\n}\n",
                 Source()),
      "mutable-global"));
}

TEST(LintSourceTest, FlagsFunctionLocalStatic) {
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp",
                 "int NextId() {\n  static int g_next = 0;\n"
                 "  return ++g_next;\n}\n",
                 Source()),
      "mutable-global"));
}

TEST(LintSourceTest, ImmutableAndConfinedStateIsFine) {
  EXPECT_FALSE(HasRule(
      LintSource("src/core/x.cpp",
                 "const int kMax = 3;\n"
                 "constexpr double kRatio = 0.25;\n"
                 "inline constexpr char kName[] = \"radar\";\n"
                 "static const char* const kTags[] = {\"a\", \"b\"};\n"
                 "thread_local int t_depth = 0;\n"
                 "extern int g_defined_elsewhere;\n"
                 "int Add(int a, int b) { return a + b; }\n"
                 "int F() { static const int kTable[] = {1, 2}; "
                 "return kTable[0]; }\n",
                 Source()),
      "mutable-global"));
}

TEST(LintSourceTest, ClassMembersAreNotGlobals) {
  EXPECT_FALSE(HasRule(
      LintSource("src/core/x.h",
                 "#pragma once\nclass Counter {\n public:\n"
                 "  void Bump() { ++count_; }\n private:\n"
                 "  int count_ = 0;\n};\n",
                 Header()),
      "mutable-global"));
}

TEST(AnalyzeSourceTest, RecordsGlobalsInInventory) {
  Analysis analysis;
  AnalyzeSource("src/common/log.cpp",
                "namespace radar {\nnamespace {\n"
                "std::atomic<LogLevel> g_level{LogLevel::kWarn};\n"
                "}\n}\n",
                FileKind{}, DefaultGlobalWhitelist(), &analysis);
  ASSERT_EQ(analysis.mutable_globals.size(), 1u);
  EXPECT_EQ(analysis.mutable_globals[0].name, "g_level");
  EXPECT_EQ(analysis.mutable_globals[0].line, 3);
  EXPECT_TRUE(analysis.mutable_globals[0].race_safe);
  EXPECT_TRUE(analysis.mutable_globals[0].whitelisted);
  EXPECT_FALSE(analysis.mutable_globals[0].function_local);
  EXPECT_TRUE(analysis.violations.empty());
}

// ---------------------------------------------------------------------
// Hot-path allocation audit
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsAllocationInsideHotRegion) {
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp",
                 "// RADAR_HOT: dispatch\n"
                 "Event* F() { return new Event; }\n"
                 "// RADAR_HOT_END\n",
                 Source()),
      "hot-alloc"));
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp",
                 "// RADAR_HOT: dispatch\n"
                 "auto p = std::make_unique<Event>();\n"
                 "// RADAR_HOT_END\n",
                 Source()),
      "hot-alloc"));
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp",
                 "// RADAR_HOT: dispatch\n"
                 "std::function<void()> fn = [] {};\n"
                 "// RADAR_HOT_END\n",
                 Source()),
      "hot-alloc"));
}

TEST(LintSourceTest, AllocationOutsideHotRegionIsFine) {
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp",
                 "Event* F() { return new Event; }\n"
                 "// RADAR_HOT: dispatch\n"
                 "int G() { return 1; }\n"
                 "// RADAR_HOT_END\n",
                 Source()),
      "hot-alloc"));
}

TEST(LintSourceTest, PlacementNewInHotRegionIsFine) {
  // Placement new constructs into existing storage — no allocation.
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp",
                 "// RADAR_HOT: slab\n"
                 "void F(void* slot) { new (slot) Event(); }\n"
                 "// RADAR_HOT_END\n",
                 Source()),
      "hot-alloc"));
}

TEST(LintSourceTest, ProseMentionDoesNotOpenHotRegion) {
  // Only a comment STARTING with the marker opens a region; prose that
  // mentions RADAR_HOT regions (like the analyzer's own headers) doesn't.
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp",
                 "// allocations inside // RADAR_HOT regions are flagged\n"
                 "Event* F() { return new Event; }\n",
                 Source()),
      "hot-alloc"));
}

TEST(LintSourceTest, UnbalancedHotMarkersAreViolations) {
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "// RADAR_HOT: never closed\nint x = 1;\n",
                 Source()),
      "hot-region"));
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "int x = 1;\n// RADAR_HOT_END\n", Source()),
      "hot-region"));
}

TEST(AnalyzeSourceTest, RecordsHotRegionsWithLabels) {
  Analysis analysis;
  AnalyzeSource("src/sim/x.cpp",
                "int A();\n// RADAR_HOT: dispatch loop\nint B();\n"
                "// RADAR_HOT_END\n",
                FileKind{}, DefaultGlobalWhitelist(), &analysis);
  ASSERT_EQ(analysis.hot_regions.size(), 1u);
  EXPECT_EQ(analysis.hot_regions[0].label, "dispatch loop");
  EXPECT_EQ(analysis.hot_regions[0].begin_line, 2);
  EXPECT_EQ(analysis.hot_regions[0].end_line, 4);
  EXPECT_TRUE(analysis.violations.empty());
}

// ---------------------------------------------------------------------
// radar.analysis/1 report
// ---------------------------------------------------------------------

TEST(AnalysisJsonTest, ReportRoundTripsAndEnumeratesInventory) {
  Analysis analysis;
  AnalyzeSource("src/common/log.cpp",
                "namespace {\nstd::atomic<int> g_level{0};\n}\n"
                "// RADAR_HOT: probe\nint F() { return 1; }\n"
                "// RADAR_HOT_END\n",
                FileKind{}, DefaultGlobalWhitelist(), &analysis);
  analysis.files_scanned = 1;
  const driver::JsonValue doc =
      AnalysisJson(analysis, {"src"}, DefaultGlobalWhitelist());

  std::string error;
  const auto parsed = driver::ParseJson(doc.Dump(2), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Find("schema")->string_value(), "radar.analysis/1");
  EXPECT_EQ(parsed->Find("files_scanned")->int_value(), 1);
  EXPECT_EQ(parsed->Find("violation_count")->int_value(), 0);
  ASSERT_EQ(parsed->Find("mutable_globals")->array().size(), 1u);
  const auto& global = parsed->Find("mutable_globals")->array()[0];
  EXPECT_EQ(global.Find("name")->string_value(), "g_level");
  EXPECT_TRUE(global.Find("race_safe")->bool_value());
  EXPECT_TRUE(global.Find("whitelisted")->bool_value());
  ASSERT_EQ(parsed->Find("hot_regions")->array().size(), 1u);
  EXPECT_EQ(parsed->Find("hot_regions")->array()[0].Find("label")
                ->string_value(),
            "probe");
  // Every whitelist entry appears, with its hit flag.
  ASSERT_EQ(parsed->Find("whitelist")->array().size(),
            DefaultGlobalWhitelist().size());
  EXPECT_TRUE(parsed->Find("whitelist")->array()[0].Find("hit")
                  ->bool_value());
}

TEST(LintSourceTest, ViolationsCarryFileAndLine) {
  const auto violations =
      LintSource("src/core/x.cpp", "int F() {\n  return rand();\n}\n",
                 Source());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].file, "src/core/x.cpp");
  EXPECT_EQ(violations[0].line, 2);
  const std::string formatted = FormatViolation(violations[0]);
  EXPECT_NE(formatted.find("src/core/x.cpp:2"), std::string::npos);
  EXPECT_NE(formatted.find("banned-rand"), std::string::npos);
}

// ---------------------------------------------------------------------
// Tree walking over the checked-in violating fixture
// ---------------------------------------------------------------------

TEST(LintTreeTest, RejectsViolatingFixture) {
  const auto violations = LintTree(std::string(RADAR_LINT_FIXTURE_DIR) +
                                   "/bad/src");
  EXPECT_TRUE(HasRule(violations, "banned-rand"));
  EXPECT_TRUE(HasRule(violations, "banned-iostream"));
  EXPECT_TRUE(HasRule(violations, "banned-assert"));
  EXPECT_TRUE(HasRule(violations, "protocol-literal"));
  EXPECT_TRUE(HasRule(violations, "using-namespace-in-header"));
  EXPECT_TRUE(HasRule(violations, "missing-pragma-once"));
  EXPECT_TRUE(HasRule(violations, "thread-confinement"));
  EXPECT_TRUE(HasRule(violations, "sim-no-std-function"));
  EXPECT_TRUE(HasRule(violations, "shard-confinement"));
  EXPECT_TRUE(HasRule(violations, "seq-reservation"));
  EXPECT_TRUE(HasRule(violations, "fault-confinement"));
  EXPECT_TRUE(HasRule(violations, "core-no-hash-maps"));
  EXPECT_TRUE(HasRule(violations, "net-rng-confinement"));
  EXPECT_TRUE(HasRule(violations, "transport-confinement"));
  EXPECT_TRUE(HasRule(violations, "nondet-unordered-iteration"));
  EXPECT_TRUE(HasRule(violations, "nondet-pointer-key"));
  EXPECT_TRUE(HasRule(violations, "nondet-pointer-hash"));
  EXPECT_TRUE(HasRule(violations, "nondet-wall-clock"));
  EXPECT_TRUE(HasRule(violations, "mutable-global"));
  EXPECT_TRUE(HasRule(violations, "hot-alloc"));
  EXPECT_TRUE(HasRule(violations, "hot-region"));
  for (const auto& v : violations) {
    EXPECT_TRUE(v.file.rfind("src/", 0) == 0) << v.file;
  }
}

TEST(LintTreeTest, RealSourceTreeIsClean) {
  // The same property the radar_lint ctest case enforces, kept here too so
  // a plain `ctest -R lint` covers both the engine and the tree. Beyond
  // zero violations, the shard-readiness inventory must match the
  // whitelist exactly and the hot regions must be present and closed.
  const Analysis analysis =
      AnalyzeTree({std::string(RADAR_SOURCE_DIR) + "/src",
                   std::string(RADAR_SOURCE_DIR) + "/tools"});
  for (const auto& v : analysis.violations) {
    ADD_FAILURE() << FormatViolation(v);
  }
  EXPECT_GT(analysis.files_scanned, 50);
  ASSERT_GE(analysis.mutable_globals.size(), 1u);
  for (const auto& g : analysis.mutable_globals) {
    EXPECT_TRUE(g.race_safe && g.whitelisted) << g.file << ": " << g.name;
  }
  ASSERT_GE(analysis.hot_regions.size(), 1u);
  for (const auto& r : analysis.hot_regions) {
    EXPECT_GT(r.end_line, r.begin_line) << r.file << ": " << r.label;
    EXPECT_FALSE(r.label.empty()) << r.file;
  }
}

}  // namespace
}  // namespace radar::lint
