// Tests for the radar_lint rule engine (tools/lint/linter.h): each rule
// fires on a minimal violating snippet, stays quiet on idiomatic code, and
// the tree walker rejects the checked-in violating fixture.
#include "lint/linter.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace radar::lint {
namespace {

std::vector<std::string> RulesOf(const std::vector<Violation>& violations) {
  std::vector<std::string> rules;
  rules.reserve(violations.size());
  for (const auto& v : violations) rules.push_back(v.rule);
  return rules;
}

bool HasRule(const std::vector<Violation>& violations,
             const std::string& rule) {
  const auto rules = RulesOf(violations);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

FileKind Header() { return {/*is_header=*/true, false}; }
FileKind Source() { return {/*is_header=*/false, false}; }

// ---------------------------------------------------------------------
// Comment/string stripping
// ---------------------------------------------------------------------

TEST(StripTest, BlanksLineCommentsButKeepsNewlines) {
  const std::string stripped =
      StripCommentsAndStrings("int a;  // rand()\nint b;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 2);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(StripTest, BlanksBlockCommentsAcrossLines) {
  const std::string stripped =
      StripCommentsAndStrings("/* rand()\n   assert(x) */ int a;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("assert"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 2);
}

TEST(StripTest, BlanksStringAndCharLiteralBodies) {
  const std::string stripped = StripCommentsAndStrings(
      "auto s = \"call rand() now\"; char c = 'x';\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find('x'), std::string::npos);
}

TEST(StripTest, EscapedQuoteDoesNotEndString) {
  const std::string stripped =
      StripCommentsAndStrings("auto s = \"a \\\" rand() b\"; int k;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int k;"), std::string::npos);
}

// ---------------------------------------------------------------------
// Banned constructs
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsRandAndSrandCalls) {
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "int x = rand() % 7;\n", Source()),
                      "banned-rand"));
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "srand(42);\n", Source()),
                      "banned-rand"));
}

TEST(LintSourceTest, IgnoresIdentifiersContainingRand) {
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "int strand(int); int x = strand(3);\n", Source()),
      "banned-rand"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "double rand_ratio = Grand(3);\n", Source()),
      "banned-rand"));
}

TEST(LintSourceTest, FlagsCoutAndCerr) {
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "std::cout << 1;\n", Source()),
                      "banned-iostream"));
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "std::cerr << 1;\n", Source()),
                      "banned-iostream"));
}

TEST(LintSourceTest, FlagsRawAssertButNotStaticAssert) {
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "assert(n > 0);\n", Source()),
                      "banned-assert"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "static_assert(sizeof(int) == 4);\n", Source()),
      "banned-assert"));
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "RADAR_CHECK(n > 0);\n", Source()),
                       "banned-assert"));
}

TEST(LintSourceTest, FlagsUsingNamespaceInHeadersOnly) {
  EXPECT_TRUE(HasRule(
      LintSource("f.h", "#pragma once\nusing namespace std;\n", Header()),
      "using-namespace-in-header"));
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "using namespace std;\n", Source()),
                       "using-namespace-in-header"));
}

TEST(LintSourceTest, RequiresPragmaOnceInHeaders) {
  EXPECT_TRUE(HasRule(LintSource("f.h", "int f();\n", Header()),
                      "missing-pragma-once"));
  EXPECT_FALSE(HasRule(LintSource("f.h", "#pragma once\nint f();\n", Header()),
                       "missing-pragma-once"));
  // A #pragma once that only appears inside a comment does not count.
  EXPECT_TRUE(HasRule(
      LintSource("f.h", "// #pragma once\nint f();\n", Header()),
      "missing-pragma-once"));
}

// ---------------------------------------------------------------------
// Thread confinement
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsThreadCreationOutsideRunner) {
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "std::thread t([] {});\n", Source()),
      "thread-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "std::jthread t([] {});\n", Source()),
      "thread-confinement"));
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "worker.detach();\n", Source()),
                      "thread-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("f.h", "#pragma once\nstd::thread member_;\n", Header()),
      "thread-confinement"));
}

TEST(LintSourceTest, ThreadConfinementQuietOnLookalikes) {
  // std::this_thread (sleeps, yields) is not thread creation.
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "std::this_thread::yield();\n", Source()),
      "thread-confinement"));
  // Identifiers merely containing "detach" are not detach() calls.
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "bool detached = IsDetached(x);\n", Source()),
      "thread-confinement"));
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "#include <thread>\n", Source()),
      "thread-confinement"));
}

TEST(LintSourceTest, RunnerFilesMayCreateThreads) {
  FileKind runner_kind;
  runner_kind.allow_threads = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/runner/thread_pool.cpp",
                 "std::thread t([] {});\nt.detach();\n", runner_kind),
      "thread-confinement"));
}

// ---------------------------------------------------------------------
// std::function ban in simulation code
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsStdFunctionInSimCode) {
  FileKind sim_kind;
  sim_kind.forbid_std_function = true;
  EXPECT_TRUE(HasRule(
      LintSource("src/sim/event_queue.h",
                 "std::function<void()> fn_;\n", sim_kind),
      "sim-no-std-function"));
}

TEST(LintSourceTest, StdFunctionAllowedOutsideSim) {
  // Driver config callbacks are cold-path; the ban is scoped to src/sim/.
  EXPECT_FALSE(HasRule(
      LintSource("src/driver/config.h",
                 "#pragma once\nstd::function<int(int)> hook;\n", Header()),
      "sim-no-std-function"));
}

TEST(LintSourceTest, StdFunctionBanQuietOnLookalikes) {
  FileKind sim_kind;
  sim_kind.forbid_std_function = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/sim/simulator.h",
                 "using PeriodicFn = InplaceFunction<void(SimTime), 64>;\n",
                 sim_kind),
      "sim-no-std-function"));
  // Mentions inside comments are stripped before token checks.
  EXPECT_FALSE(HasRule(
      LintSource("src/sim/inplace_function.h",
                 "#pragma once\n// replaces std::function on the hot path\n",
                 sim_kind),
      "sim-no-std-function"));
}

// ---------------------------------------------------------------------
// Fault-model confinement
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsFaultParametersOutsideFaultModule) {
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp", "double mtbf_s = 600.0;\n", Source()),
      "fault-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("src/driver/x.cpp", "config.mttr = 45.0;\n", Source()),
      "fault-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("src/net/x.h", "#pragma once\ndouble drop_prob[4];\n",
                 Header()),
      "fault-confinement"));
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp", "double request_delay_prob = 0.5;\n",
                 Source()),
      "fault-confinement"));
}

TEST(LintSourceTest, FaultModuleMayNameFaultParameters) {
  FileKind fault_kind;
  fault_kind.allow_fault_injection = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/fault/fault_plan.h",
                 "#pragma once\ndouble mtbf_s = 0.0; double mttr_s = 0.0;\n"
                 "double drop_prob[4] = {};\n",
                 fault_kind),
      "fault-confinement"));
}

TEST(LintSourceTest, FaultConfinementQuietOnLookalikes) {
  // Identifier-boundary matching: these merely contain the tokens.
  EXPECT_FALSE(HasRule(
      LintSource("src/core/x.cpp", "double mtbf_scaled = Scale();\n",
                 Source()),
      "fault-confinement"));
  EXPECT_FALSE(HasRule(
      LintSource("src/core/x.cpp", "int backdrop_probe = 1;\n", Source()),
      "fault-confinement"));
  // Prose mentions are stripped with the comments.
  EXPECT_FALSE(HasRule(
      LintSource("src/driver/x.cpp", "// tune mtbf via the fault plan\n",
                 Source()),
      "fault-confinement"));
}

// ---------------------------------------------------------------------
// Hash-map ban in core protocol code
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsHashMapsInCoreCode) {
  FileKind core_kind;
  core_kind.forbid_hash_maps = true;
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.h",
                 "#pragma once\nstd::unordered_map<ObjectId, int> m_;\n",
                 core_kind),
      "core-no-hash-maps"));
  EXPECT_TRUE(HasRule(
      LintSource("src/core/x.cpp", "std::map<NodeId, double> load_;\n",
                 core_kind),
      "core-no-hash-maps"));
}

TEST(LintSourceTest, HashMapsAllowedOutsideCore) {
  // The ban is scoped to src/core/: cold-path modules (io, analysis) may
  // still pick the container that reads best.
  EXPECT_FALSE(HasRule(
      LintSource("src/analysis/x.cpp",
                 "std::unordered_map<std::string, int> counts;\n", Source()),
      "core-no-hash-maps"));
}

TEST(LintSourceTest, HashMapBanQuietOnLookalikes) {
  FileKind core_kind;
  core_kind.forbid_hash_maps = true;
  // SlabMap and prose mentions must not trip the token check.
  EXPECT_FALSE(HasRule(
      LintSource("src/core/x.h",
                 "#pragma once\nSlabMap<ReplicaRecord> records_;\n",
                 core_kind),
      "core-no-hash-maps"));
  EXPECT_FALSE(HasRule(
      LintSource("src/core/x.cpp",
                 "// replaced std::unordered_map with SlabMap (§12)\n",
                 core_kind),
      "core-no-hash-maps"));
}

// ---------------------------------------------------------------------
// Protocol-literal audit
// ---------------------------------------------------------------------

TEST(LintSourceTest, FlagsProtocolThresholdLiterals) {
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "double migr_ratio = 0.6;\n", Source()),
      "protocol-literal"));
  EXPECT_TRUE(HasRule(
      LintSource("f.cpp", "double repl = 1.0 / 6.0;\n", Source()),
      "protocol-literal"));
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "unsigned k = 6u;\n", Source()),
                      "protocol-literal"));
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "double u = 0.03;\n", Source()),
                      "protocol-literal"));
  EXPECT_TRUE(HasRule(LintSource("f.cpp", "double m = 0.18;\n", Source()),
                      "protocol-literal"));
}

TEST(LintSourceTest, IgnoresNearbyNonThresholdNumbers) {
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "double x = 0.66;\n", Source()),
                       "protocol-literal"));
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "double x = 10.6;\n", Source()),
                       "protocol-literal"));
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "unsigned x = 16u;\n", Source()),
                       "protocol-literal"));
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "double x = 0.035;\n", Source()),
                       "protocol-literal"));
  EXPECT_FALSE(HasRule(LintSource("f.cpp", "double x = 1.0 / 60.0;\n",
                                  Source()),
                       "protocol-literal"));
}

TEST(LintSourceTest, CommentedThresholdsAreFine) {
  EXPECT_FALSE(HasRule(
      LintSource("f.cpp", "// the paper uses MIGR_RATIO = 0.6 here\n",
                 Source()),
      "protocol-literal"));
}

TEST(LintSourceTest, ParamsHeaderMayDefineThresholds) {
  FileKind params_kind;
  params_kind.is_header = true;
  params_kind.allow_protocol_literals = true;
  EXPECT_FALSE(HasRule(
      LintSource("src/core/params.h",
                 "#pragma once\ndouble migr_ratio = 0.6;\n", params_kind),
      "protocol-literal"));
}

TEST(LintSourceTest, ViolationsCarryFileAndLine) {
  const auto violations =
      LintSource("src/core/x.cpp", "int a;\nint b = rand();\n", Source());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].file, "src/core/x.cpp");
  EXPECT_EQ(violations[0].line, 2);
  const std::string formatted = FormatViolation(violations[0]);
  EXPECT_NE(formatted.find("src/core/x.cpp:2"), std::string::npos);
  EXPECT_NE(formatted.find("banned-rand"), std::string::npos);
}

// ---------------------------------------------------------------------
// Tree walking over the checked-in violating fixture
// ---------------------------------------------------------------------

TEST(LintTreeTest, RejectsViolatingFixture) {
  const auto violations = LintTree(std::string(RADAR_LINT_FIXTURE_DIR) +
                                   "/bad/src");
  EXPECT_TRUE(HasRule(violations, "banned-rand"));
  EXPECT_TRUE(HasRule(violations, "banned-iostream"));
  EXPECT_TRUE(HasRule(violations, "banned-assert"));
  EXPECT_TRUE(HasRule(violations, "protocol-literal"));
  EXPECT_TRUE(HasRule(violations, "using-namespace-in-header"));
  EXPECT_TRUE(HasRule(violations, "missing-pragma-once"));
  EXPECT_TRUE(HasRule(violations, "thread-confinement"));
  EXPECT_TRUE(HasRule(violations, "sim-no-std-function"));
  EXPECT_TRUE(HasRule(violations, "fault-confinement"));
  EXPECT_TRUE(HasRule(violations, "core-no-hash-maps"));
  for (const auto& v : violations) {
    EXPECT_TRUE(v.file.rfind("src/", 0) == 0) << v.file;
  }
}

TEST(LintTreeTest, RealSourceTreeIsClean) {
  // The same property the radar_lint ctest case enforces, kept here too so
  // a plain `ctest -R lint` covers both the engine and the tree.
  const auto violations = LintTree(std::string(RADAR_SOURCE_DIR) + "/src");
  for (const auto& v : violations) {
    ADD_FAILURE() << FormatViolation(v);
  }
}

}  // namespace
}  // namespace radar::lint
