// A scriptable PlacementContext for unit-testing HostAgent in isolation.
#pragma once

#include <set>
#include <vector>

#include "core/distance.h"
#include "core/protocol.h"
#include "core/redirector.h"

namespace radar::core::testing {

class FakeContext : public PlacementContext {
 public:
  struct Call {
    NodeId from;
    NodeId to;
    CreateObjMethod method;
    ObjectId x;
    double unit_load;
  };

  explicit FakeContext(std::int32_t num_nodes,
                       double distribution_constant = 2.0)
      : oracle(num_nodes), redirector(oracle, distribution_constant) {}

  CreateObjResponse CreateObjRpc(NodeId from, NodeId to,
                                 CreateObjMethod method, ObjectId x,
                                 double unit_load) override {
    calls.push_back(Call{from, to, method, x, unit_load});
    if (!accept_all && accepting.count(to) == 0) return {};
    const bool copied = holdings[static_cast<std::size_t>(to)].insert(x).second;
    // Mirror Cluster's behavior: the redirector learns of the new copy
    // before the RPC returns.
    redirector.OnReplicaCreated(x, to);
    return CreateObjResponse{true, copied};
  }

  Redirector& RedirectorFor(ObjectId) override { return redirector; }

  std::int32_t Distance(NodeId from, NodeId to) const override {
    return oracle.Distance(from, to);
  }

  NodeId FindOffloadRecipient(NodeId) override { return offload_recipient; }

  double ReportedLoad(NodeId) const override { return reported_load; }

  /// Registers holdings for nodes that "already have" objects.
  void Preload(NodeId node, ObjectId x) {
    holdings[static_cast<std::size_t>(node)].insert(x);
  }

  MatrixDistanceOracle oracle;
  Redirector redirector;
  std::vector<Call> calls;
  bool accept_all = true;
  std::set<NodeId> accepting;  // consulted when accept_all == false
  NodeId offload_recipient = kInvalidNode;
  double reported_load = 0.0;
  std::vector<std::set<ObjectId>> holdings{64};
};

}  // namespace radar::core::testing
