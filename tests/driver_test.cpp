// Unit tests for the driver layer: configuration, report arithmetic, and
// small end-to-end simulations of each policy combination.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "driver/hosting_simulation.h"

namespace radar::driver {
namespace {

SimConfig SmallConfig() {
  SimConfig config;
  config.num_objects = 500;
  config.duration = SecondsToSim(300.0);
  config.seed = 7;
  config.workload = WorkloadKind::kZipf;
  return config;
}

TEST(SimConfigTest, DefaultsMatchTable1) {
  const SimConfig config;
  EXPECT_EQ(config.num_objects, 10000);
  EXPECT_EQ(config.object_bytes, 12 * 1024);
  EXPECT_DOUBLE_EQ(config.node_request_rate, 40.0);
  EXPECT_DOUBLE_EQ(config.server_capacity, 200.0);
  EXPECT_DOUBLE_EQ(config.protocol.high_watermark, 90.0);
  EXPECT_DOUBLE_EQ(config.protocol.low_watermark, 80.0);
  EXPECT_DOUBLE_EQ(config.protocol.deletion_threshold_u, 0.03);
  EXPECT_DOUBLE_EQ(config.protocol.replication_threshold_m, 0.18);
  EXPECT_EQ(config.protocol.placement_interval, SecondsToSim(100.0));
  EXPECT_EQ(config.protocol.measurement_interval, SecondsToSim(20.0));
  EXPECT_TRUE(config.protocol.IsStable());
}

TEST(SimConfigTest, HighLoadPreset) {
  SimConfig config;
  config.ApplyHighLoad();
  EXPECT_DOUBLE_EQ(config.protocol.high_watermark, 50.0);
  EXPECT_DOUBLE_EQ(config.protocol.low_watermark, 40.0);
  EXPECT_TRUE(config.protocol.IsStable());
}

TEST(ProtocolParamsTest, StabilityConditions) {
  core::ProtocolParams p;
  EXPECT_TRUE(p.IsStable());
  p.replication_threshold_m = 4.0 * p.deletion_threshold_u;  // not strict
  EXPECT_FALSE(p.IsStable());
  p = {};
  p.migr_ratio = 0.5;
  EXPECT_FALSE(p.IsStable());
  p = {};
  p.repl_ratio = 0.7;  // above migr_ratio
  EXPECT_FALSE(p.IsStable());
  p = {};
  p.low_watermark = p.high_watermark;
  EXPECT_FALSE(p.IsStable());
}

TEST(WorkloadKindTest, Names) {
  EXPECT_STREQ(WorkloadKindName(WorkloadKind::kZipf), "zipf");
  EXPECT_STREQ(WorkloadKindName(WorkloadKind::kHotSites), "hot-sites");
  EXPECT_STREQ(WorkloadKindName(WorkloadKind::kHotPages), "hot-pages");
  EXPECT_STREQ(WorkloadKindName(WorkloadKind::kRegional), "regional");
  EXPECT_STREQ(WorkloadKindName(WorkloadKind::kUniform), "uniform");
}

TEST(HostingSimulationTest, RedirectorAtMostCentralNode) {
  HostingSimulation sim(SmallConfig());
  EXPECT_EQ(sim.redirector_home(0), sim.routing().MostCentralNode());
}

TEST(HostingSimulationTest, RunProducesSaneReport) {
  HostingSimulation sim(SmallConfig());
  const RunReport report = sim.Run();
  EXPECT_EQ(report.workload_name, "zipf");
  EXPECT_EQ(report.distribution_name, "radar");
  EXPECT_EQ(report.placement_name, "radar");
  // 53 gateways x 40 req/s x 300 s = 636k generated; nearly all serviced.
  EXPECT_GT(report.total_requests, 600000);
  EXPECT_EQ(report.dropped_requests, 0);
  EXPECT_GT(report.traffic.total_payload(), 0);
  EXPECT_GT(report.final_avg_replicas, 1.0);
  EXPECT_GT(report.latency_stats.mean(), 0.0);
  EXPECT_GT(report.max_load.OverallMax(), 0.0);
}

TEST(HostingSimulationTest, DeterministicAcrossRuns) {
  const RunReport a = HostingSimulation(SmallConfig()).Run();
  const RunReport b = HostingSimulation(SmallConfig()).Run();
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.traffic.total_payload(), b.traffic.total_payload());
  EXPECT_EQ(a.traffic.total_overhead(), b.traffic.total_overhead());
  EXPECT_EQ(a.object_copies, b.object_copies);
  EXPECT_DOUBLE_EQ(a.latency_stats.mean(), b.latency_stats.mean());
  EXPECT_DOUBLE_EQ(a.final_avg_replicas, b.final_avg_replicas);
}

TEST(HostingSimulationTest, SeedChangesOutcome) {
  SimConfig other = SmallConfig();
  other.seed = 99;
  const RunReport a = HostingSimulation(SmallConfig()).Run();
  const RunReport b = HostingSimulation(other).Run();
  EXPECT_NE(a.traffic.total_payload(), b.traffic.total_payload());
}

TEST(HostingSimulationTest, StaticPlacementNeverRelocates) {
  SimConfig config = SmallConfig();
  config.placement = baselines::PlacementPolicy::kStatic;
  const RunReport report = HostingSimulation(config).Run();
  EXPECT_EQ(report.TotalRelocations(), 0);
  EXPECT_EQ(report.object_copies, 0);
  EXPECT_EQ(report.traffic.total_overhead(), 0);
  EXPECT_DOUBLE_EQ(report.final_avg_replicas, 1.0);
}

TEST(HostingSimulationTest, FullReplicationWithClosestHasZeroBandwidth) {
  SimConfig config = SmallConfig();
  config.num_objects = 100;
  config.duration = SecondsToSim(60.0);
  config.placement = baselines::PlacementPolicy::kFullReplication;
  config.distribution = baselines::DistributionPolicy::kClosest;
  const RunReport report = HostingSimulation(config).Run();
  // Every gateway holds every object: responses never cross the backbone.
  EXPECT_EQ(report.traffic.total_payload(), 0);
  EXPECT_DOUBLE_EQ(report.final_avg_replicas, 53.0);
}

TEST(HostingSimulationTest, RoundRobinBaselineRuns) {
  SimConfig config = SmallConfig();
  config.duration = SecondsToSim(120.0);
  config.distribution = baselines::DistributionPolicy::kRoundRobin;
  const RunReport report = HostingSimulation(config).Run();
  EXPECT_EQ(report.distribution_name, "round-robin");
  EXPECT_GT(report.total_requests, 0);
}

TEST(HostingSimulationTest, PoissonArrivalsRun) {
  SimConfig config = SmallConfig();
  config.duration = SecondsToSim(120.0);
  config.arrivals = ArrivalProcess::kPoisson;
  const RunReport report = HostingSimulation(config).Run();
  // Poisson generation is rate-preserving in expectation.
  EXPECT_NEAR(static_cast<double>(report.total_requests), 53.0 * 40.0 * 120.0,
              53.0 * 40.0 * 120.0 * 0.05);
}

TEST(HostingSimulationTest, MultipleRedirectorsPartitionObjects) {
  SimConfig config = SmallConfig();
  config.duration = SecondsToSim(120.0);
  config.num_redirectors = 4;
  HostingSimulation sim(config);
  // All four homes are distinct nodes.
  std::set<NodeId> homes;
  for (int i = 0; i < 4; ++i) homes.insert(sim.redirector_home(i));
  EXPECT_EQ(homes.size(), 4u);
  const RunReport report = sim.Run();
  EXPECT_GT(report.total_requests, 0);
  EXPECT_EQ(report.dropped_requests, 0);
}

TEST(HostingSimulationTest, TrackedHostSamplesCollected) {
  SimConfig config = SmallConfig();
  config.duration = SecondsToSim(100.0);
  config.tracked_host = 5;
  const RunReport report = HostingSimulation(config).Run();
  // One sample per 20 s measurement tick.
  EXPECT_EQ(report.tracked_host_loads.size(), 5u);
  for (const auto& sample : report.tracked_host_loads) {
    EXPECT_GE(sample.upper_estimate, sample.measured);
    EXPECT_LE(sample.lower_estimate, sample.measured);
  }
}

TEST(HostingSimulationTest, CustomWorkloadOverridesConfig) {
  SimConfig config = SmallConfig();
  config.duration = SecondsToSim(60.0);
  HostingSimulation sim(config);
  sim.SetWorkload(std::make_unique<workload::UniformWorkload>(500));
  const RunReport report = sim.Run();
  EXPECT_EQ(report.workload_name, "uniform");
}

TEST(HostingSimulationTest, CustomTopologyAccepted) {
  net::TopologyBuilder b;
  b.AddNode("a", net::Region::kEurope);
  b.AddNode("b", net::Region::kEurope);
  b.AddNode("c", net::Region::kEasternNorthAmerica);
  b.Link(0, 1, MillisToSim(10.0), 350.0 * 1024.0);
  b.Link(1, 2, MillisToSim(10.0), 350.0 * 1024.0);
  SimConfig config;
  config.num_objects = 30;
  config.duration = SecondsToSim(60.0);
  config.workload = WorkloadKind::kUniform;
  HostingSimulation sim(config, std::move(b).Build());
  const RunReport report = sim.Run();
  EXPECT_GT(report.total_requests, 0);
  EXPECT_EQ(report.dropped_requests, 0);
}

TEST(HostingSimulationTest, LinkStatsMatchLedgerTotals) {
  SimConfig config = SmallConfig();
  config.duration = SecondsToSim(120.0);
  HostingSimulation sim(config);
  const RunReport report = sim.Run();
  // Every byte-hop charged to the traffic ledger traversed a link.
  EXPECT_EQ(sim.link_stats().total_byte_hops(),
            report.traffic.total_payload() + report.traffic.total_overhead());
  const auto [from, to] = sim.link_stats().BusiestHop();
  ASSERT_NE(from, kInvalidNode);
  EXPECT_TRUE(sim.topology().graph().HasLink(from, to));
  EXPECT_GT(sim.link_stats().BytesOnHop(from, to), 0);
}

TEST(RunReportTest, DerivedMetricsArithmetic) {
  RunReport report(SecondsToSim(10.0));
  // Payload: buckets of 1000, 1000, 500, 100 byte-hops (width 10 s).
  report.traffic.AddPayload(SecondsToSim(5.0), 1000);
  report.traffic.AddPayload(SecondsToSim(15.0), 1000);
  report.traffic.AddPayload(SecondsToSim(25.0), 500);
  report.traffic.AddPayload(SecondsToSim(35.0), 100);
  EXPECT_DOUBLE_EQ(report.InitialBandwidthRate(2), 100.0);
  EXPECT_DOUBLE_EQ(report.EquilibriumBandwidthRate(), 10.0);
  EXPECT_DOUBLE_EQ(report.BandwidthReductionPercent(), 90.0);
  // Latency buckets: 0.2, 0.2, 0.1, 0.1 s means.
  report.latency.Add(SecondsToSim(5.0), 0.2);
  report.latency.Add(SecondsToSim(15.0), 0.2);
  report.latency.Add(SecondsToSim(25.0), 0.1);
  report.latency.Add(SecondsToSim(35.0), 0.1);
  EXPECT_DOUBLE_EQ(report.InitialLatency(), 0.2);
  EXPECT_DOUBLE_EQ(report.EquilibriumLatency(), 0.1);
  EXPECT_NEAR(report.LatencyReductionPercent(), 50.0, 1e-9);
}

TEST(RunReportTest, PrintersProduceOutput) {
  RunReport report(SecondsToSim(10.0));
  report.workload_name = "zipf";
  report.distribution_name = "radar";
  report.placement_name = "radar";
  report.duration = SecondsToSim(100.0);
  report.traffic.AddPayload(SecondsToSim(5.0), 1000);
  report.latency.Add(SecondsToSim(5.0), 0.1);
  report.max_load.Add(SecondsToSim(5.0), 42.0);
  std::ostringstream summary;
  report.PrintSummary(summary);
  EXPECT_NE(summary.str().find("workload=zipf"), std::string::npos);
  std::ostringstream series;
  report.PrintSeries(series);
  EXPECT_NE(series.str().find("maxload"), std::string::npos);
}

TEST(SimConfigDeathTest, StructurallyInvalidConfigAborts) {
  SimConfig config;
  config.num_objects = 0;
  EXPECT_DEATH(HostingSimulation{config}, "RADAR_CHECK");
}

}  // namespace
}  // namespace radar::driver
