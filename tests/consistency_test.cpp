// Unit tests for the Sec. 5 consistency layer: object categories, primary-
// copy propagation (immediate and batched), commuting-statistics merging,
// and replica caps.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/consistency.h"

namespace radar::core {
namespace {

class ConsistencyTest : public ::testing::Test {
 protected:
  ConsistencyTest() {
    catalog_.Register(1, ObjectCategory::kProviderUpdated, /*primary=*/0);
    catalog_.Register(2, ObjectCategory::kCommutingUpdates, 1);
    catalog_.Register(3, ObjectCategory::kNonCommutingUpdates, 2);
  }

  UpdateManager MakeManager(PropagationPolicy policy) {
    return UpdateManager(
        &catalog_,
        [this](ObjectId x) {
          const auto it = replica_sets_.find(x);
          return it != replica_sets_.end() ? it->second
                                           : std::vector<NodeId>{};
        },
        policy);
  }

  ObjectCatalog catalog_;
  std::map<ObjectId, std::vector<NodeId>> replica_sets_;
};

TEST_F(ConsistencyTest, CatalogDefaults) {
  EXPECT_TRUE(catalog_.Knows(1));
  EXPECT_FALSE(catalog_.Knows(99));
  EXPECT_EQ(catalog_.MetaOf(1).primary, 0);
  EXPECT_EQ(catalog_.ReplicaCap(1), 0);  // category 1: unlimited
  EXPECT_EQ(catalog_.ReplicaCap(2), 0);  // category 2: unlimited
  EXPECT_EQ(catalog_.ReplicaCap(3), 1);  // category 3: migrate-only
  EXPECT_TRUE(catalog_.MayReplicate(1));
  EXPECT_FALSE(catalog_.MayReplicate(3));
  EXPECT_EQ(catalog_.ReplicaCap(99), 0);  // unknown objects unrestricted
}

TEST_F(ConsistencyTest, ExplicitCapOverridesCategoryDefault) {
  catalog_.Register(4, ObjectCategory::kNonCommutingUpdates, 0,
                    /*replica_cap=*/3);
  EXPECT_EQ(catalog_.ReplicaCap(4), 3);
  EXPECT_TRUE(catalog_.MayReplicate(4));
}

TEST_F(ConsistencyTest, ImmediatePropagationReachesAllReplicas) {
  replica_sets_[1] = {0, 3, 5};
  UpdateManager manager = MakeManager(PropagationPolicy::kImmediate);
  EXPECT_EQ(manager.ProviderUpdate(1, SecondsToSim(1.0)), 1);
  EXPECT_EQ(manager.PrimaryVersion(1), 1);
  for (const NodeId host : {0, 3, 5}) {
    EXPECT_EQ(manager.VersionAt(1, host), 1) << host;
  }
  EXPECT_TRUE(manager.IsConsistent(1));
}

TEST_F(ConsistencyTest, ImmediatePropagationCountsOnlyRemoteShips) {
  replica_sets_[1] = {0, 3};
  UpdateManager manager = MakeManager(PropagationPolicy::kImmediate);
  std::vector<std::pair<NodeId, NodeId>> shipped;
  manager.set_propagate_hook([&](NodeId from, NodeId to, ObjectId) {
    shipped.push_back({from, to});
  });
  manager.ProviderUpdate(1, SecondsToSim(1.0));
  // The primary (0) does not ship to itself.
  ASSERT_EQ(shipped.size(), 1u);
  EXPECT_EQ(shipped[0], (std::pair<NodeId, NodeId>{0, 3}));
}

TEST_F(ConsistencyTest, BatchedPropagationWaitsForFlush) {
  replica_sets_[1] = {0, 3};
  UpdateManager manager = MakeManager(PropagationPolicy::kBatched);
  manager.ProviderUpdate(1, SecondsToSim(1.0));
  manager.ProviderUpdate(1, SecondsToSim(2.0));
  EXPECT_EQ(manager.PrimaryVersion(1), 2);
  EXPECT_EQ(manager.VersionAt(1, 3), 0);
  EXPECT_FALSE(manager.IsConsistent(1));
  EXPECT_EQ(manager.pending_batch_size(), 1);
  const auto deliveries = manager.FlushBatch(SecondsToSim(3.0));
  EXPECT_EQ(deliveries, 1);  // replica 3 jumps straight to version 2
  EXPECT_EQ(manager.VersionAt(1, 3), 2);
  EXPECT_TRUE(manager.IsConsistent(1));
  EXPECT_EQ(manager.pending_batch_size(), 0);
}

TEST_F(ConsistencyTest, StalenessMeasuredFromPrimaryUpdate) {
  replica_sets_[1] = {0, 3};
  UpdateManager manager = MakeManager(PropagationPolicy::kBatched);
  manager.ProviderUpdate(1, SecondsToSim(10.0));
  EXPECT_DOUBLE_EQ(manager.StalenessSeconds(1, 3, SecondsToSim(25.0)), 15.0);
  EXPECT_DOUBLE_EQ(manager.StalenessSeconds(1, 0, SecondsToSim(25.0)), 0.0);
  manager.FlushBatch(SecondsToSim(30.0));
  EXPECT_DOUBLE_EQ(manager.StalenessSeconds(1, 3, SecondsToSim(40.0)), 0.0);
}

TEST_F(ConsistencyTest, NeverUpdatedObjectIsConsistent) {
  replica_sets_[1] = {0, 3};
  UpdateManager manager = MakeManager(PropagationPolicy::kBatched);
  EXPECT_TRUE(manager.IsConsistent(1));
  EXPECT_DOUBLE_EQ(manager.StalenessSeconds(1, 3, SecondsToSim(5.0)), 0.0);
}

TEST_F(ConsistencyTest, NewReplicaStartsCurrent) {
  replica_sets_[1] = {0};
  UpdateManager manager = MakeManager(PropagationPolicy::kImmediate);
  manager.ProviderUpdate(1, SecondsToSim(1.0));
  manager.ProviderUpdate(1, SecondsToSim(2.0));
  // A replica created later copies from a live (current) replica.
  replica_sets_[1] = {0, 4};
  manager.OnReplicaCreated(1, 4, SecondsToSim(3.0));
  EXPECT_EQ(manager.VersionAt(1, 4), 2);
  EXPECT_TRUE(manager.IsConsistent(1));
}

TEST_F(ConsistencyTest, ReplicaSetShrinkageIgnoresDepartedReplica) {
  replica_sets_[1] = {0, 3};
  UpdateManager manager = MakeManager(PropagationPolicy::kBatched);
  manager.ProviderUpdate(1, SecondsToSim(1.0));
  // Replica 3 leaves before the flush; consistency is judged over the
  // *current* replica set.
  replica_sets_[1] = {0};
  manager.OnReplicaDropped(1, 3);
  EXPECT_TRUE(manager.IsConsistent(1));
}

TEST_F(ConsistencyTest, CommutingStatisticsMergeAcrossReplicas) {
  UpdateManager manager = MakeManager(PropagationPolicy::kImmediate);
  manager.RecordCommutingUpdate(2, 1, 10);
  manager.RecordCommutingUpdate(2, 4, 5);
  manager.RecordCommutingUpdate(2, 1, 2);
  EXPECT_EQ(manager.MergedStatistic(2), 17);
}

TEST_F(ConsistencyTest, DroppedReplicaStatisticsAreArchivedNotLost) {
  // Sec. 5's requirement: merging access statistics recorded by different
  // replicas must survive replica deletions.
  UpdateManager manager = MakeManager(PropagationPolicy::kImmediate);
  manager.RecordCommutingUpdate(2, 1, 10);
  manager.RecordCommutingUpdate(2, 4, 5);
  manager.OnReplicaDropped(2, 4);
  EXPECT_EQ(manager.MergedStatistic(2), 15);
  manager.RecordCommutingUpdate(2, 1, 1);
  EXPECT_EQ(manager.MergedStatistic(2), 16);
  // Dropping the same replica twice is harmless (idempotent archive).
  manager.OnReplicaDropped(2, 4);
  EXPECT_EQ(manager.MergedStatistic(2), 16);
}

TEST_F(ConsistencyTest, UnknownObjectStatisticIsZero) {
  UpdateManager manager = MakeManager(PropagationPolicy::kImmediate);
  EXPECT_EQ(manager.MergedStatistic(42), 0);
  EXPECT_EQ(manager.PrimaryVersion(42), 0);
  EXPECT_EQ(manager.VersionAt(42, 0), 0);
}

TEST_F(ConsistencyTest, FlushWithNothingPendingDeliversNothing) {
  UpdateManager manager = MakeManager(PropagationPolicy::kBatched);
  EXPECT_EQ(manager.FlushBatch(SecondsToSim(1.0)), 0);
}

TEST_F(ConsistencyTest, MultipleObjectsBatchIndependently) {
  catalog_.Register(10, ObjectCategory::kProviderUpdated, 0);
  replica_sets_[1] = {0, 3};
  replica_sets_[10] = {0, 4, 5};
  UpdateManager manager = MakeManager(PropagationPolicy::kBatched);
  manager.ProviderUpdate(1, SecondsToSim(1.0));
  manager.ProviderUpdate(10, SecondsToSim(1.0));
  EXPECT_EQ(manager.pending_batch_size(), 2);
  EXPECT_EQ(manager.FlushBatch(SecondsToSim(2.0)), 3);  // 1 + 2 remotes
  EXPECT_TRUE(manager.IsConsistent(1));
  EXPECT_TRUE(manager.IsConsistent(10));
}

TEST_F(ConsistencyTest, BridgeTracksRedirectorChanges) {
  // Wire an UpdateManager onto a live redirector via the bridge: replica
  // creations start current, drops archive their statistics — with no
  // manual bookkeeping.
  MatrixDistanceOracle oracle(6);
  Redirector redirector(oracle, 2.0);
  replica_sets_[1] = {};  // replica set comes from the redirector now
  UpdateManager manager(
      &catalog_,
      [&redirector](ObjectId x) {
        return redirector.KnowsObject(x) ? redirector.ReplicaHosts(x)
                                         : std::vector<NodeId>{};
      },
      PropagationPolicy::kImmediate);
  SimTime now = SecondsToSim(1.0);
  ConsistencyBridge bridge(&manager, [&now] { return now; });
  redirector.set_change_listener(&bridge);

  redirector.RegisterObject(1, 0);
  manager.ProviderUpdate(1, now);
  EXPECT_TRUE(manager.IsConsistent(1));

  now = SecondsToSim(2.0);
  redirector.OnReplicaCreated(1, 4);  // placement creates a replica
  EXPECT_EQ(manager.VersionAt(1, 4), 1);  // bridge synced it
  EXPECT_TRUE(manager.IsConsistent(1));

  manager.RecordCommutingUpdate(1, 4, 5);
  ASSERT_TRUE(redirector.RequestDrop(1, 4));  // placement drops it again
  EXPECT_EQ(manager.MergedStatistic(1), 5);   // archived, not lost
  EXPECT_TRUE(manager.IsConsistent(1));
}

TEST(ConsistencyDeathTest, UpdateForUncataloguedObjectAborts) {
  ObjectCatalog catalog;
  UpdateManager manager(
      &catalog, [](ObjectId) { return std::vector<NodeId>{}; },
      PropagationPolicy::kImmediate);
  EXPECT_DEATH(manager.ProviderUpdate(1, 0), "uncatalogued");
}

TEST(ConsistencyDeathTest, DoubleCatalogRegistrationAborts) {
  ObjectCatalog catalog;
  catalog.Register(1, ObjectCategory::kProviderUpdated, 0);
  EXPECT_DEATH(catalog.Register(1, ObjectCategory::kProviderUpdated, 0),
               "catalogued");
}

}  // namespace
}  // namespace radar::core
