// Byte-equality pin for the shard-parallel engine (DESIGN.md §14).
//
// The sharded engine partitions hosts into K shards and runs conservative
// time windows concurrently on a thread pool; its one load-bearing claim
// is that K is pure mechanism — the full ReportJson dump must be
// byte-identical for every K >= 1, on the same scenarios the serial
// engine is golden-pinned on: UUNET + Zipf, with and without a fault
// plan, under deterministic and Poisson arrivals. A single float added in
// a different order would fail these pins loudly.
//
// K = 7 is deliberately coprime to the UUNET node count's natural
// groupings so shard boundaries land in awkward places; K = 1 exercises
// the windowed engine with no cross-shard traffic at all.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/config.h"
#include "driver/hosting_simulation.h"
#include "driver/report_json.h"
#include "fault/fault_plan.h"
#include "runner/shard_executor.h"

namespace radar {
namespace {

// Short but placement-crossing: long enough that replication, migration,
// and the transfer hook all execute (same rationale as the golden pin).
driver::SimConfig BaseConfig() {
  driver::SimConfig config;
  config.duration = SecondsToSim(150.0);
  config.num_objects = 500;
  config.seed = 7;
  config.workload = driver::WorkloadKind::kZipf;
  return config;
}

fault::FaultPlan TestFaultPlan() {
  std::istringstream in(
      "crash 3 20\n"
      "recover 3 60\n"
      "link-down 0 1 30\n"
      "link-up 0 1 70\n"
      "host-faults 400 40\n"
      "loss request 0.02\n"
      "delay request 0.05 30\n");
  std::string error;
  auto plan = fault::ParseFaultPlan(in, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  return plan.value_or(fault::FaultPlan{});
}

std::string RunWithShards(driver::SimConfig config, int shards) {
  config.shards = shards;
  runner::PoolShardExecutor executor(shards);
  driver::HostingSimulation sim(config);
  sim.set_window_executor(&executor);
  const driver::RunReport report = sim.Run();
  EXPECT_GT(report.total_requests, 0);
  return driver::ReportJson(report).Dump(2);
}

void ExpectByteIdenticalAcrossShardCounts(const driver::SimConfig& config) {
  const std::string reference = RunWithShards(config, 1);
  for (const int k : {2, 4, 7}) {
    EXPECT_EQ(reference, RunWithShards(config, k)) << "shards=" << k;
  }
}

TEST(ShardTest, ReportByteIdenticalAcrossShardCounts) {
  ExpectByteIdenticalAcrossShardCounts(BaseConfig());
}

TEST(ShardTest, ReportByteIdenticalUnderFaultPlan) {
  driver::SimConfig config = BaseConfig();
  config.faults = TestFaultPlan();
  config.replica_floor = 2;
  ExpectByteIdenticalAcrossShardCounts(config);
}

TEST(ShardTest, ReportByteIdenticalUnderPoissonArrivals) {
  // Poisson pins the per-gateway arrival streams: every gateway owns a
  // forked RNG, so its gap draws cannot depend on which shard ran first.
  driver::SimConfig config = BaseConfig();
  config.arrivals = driver::ArrivalProcess::kPoisson;
  ExpectByteIdenticalAcrossShardCounts(config);
}

TEST(ShardTest, SerialExecutorMatchesPooledExecutor) {
  // The executor is pure mechanism too: with no executor installed the
  // windows run inline (sim::SerialWindowExecutor), and the report must
  // match the pooled run byte for byte.
  driver::SimConfig config = BaseConfig();
  config.shards = 4;
  driver::HostingSimulation sim(config);
  const driver::RunReport report = sim.Run();
  EXPECT_EQ(driver::ReportJson(report).Dump(2), RunWithShards(config, 4));
}

TEST(ShardTest, SeedChangesTheRun) {
  // Anti-pin: the equality above must not be vacuous (e.g. an engine that
  // ignores its inputs would also be "deterministic").
  driver::SimConfig other = BaseConfig();
  other.seed = 8;
  EXPECT_NE(RunWithShards(BaseConfig(), 4), RunWithShards(other, 4));
}

}  // namespace
}  // namespace radar
