// Unit tests for the synthetic workloads of Sec. 6.1.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "net/uunet.h"
#include "workload/workload.h"

namespace radar::workload {
namespace {

constexpr ObjectId kObjects = 1000;

TEST(UniformWorkloadTest, CoversDomainEvenly) {
  UniformWorkload w(kObjects);
  Rng rng(1);
  std::vector<int> counts(kObjects, 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const ObjectId x = w.NextObject(0, 0, rng);
    ASSERT_GE(x, 0);
    ASSERT_LT(x, kObjects);
    ++counts[static_cast<std::size_t>(x)];
  }
  const double expected = static_cast<double>(kSamples) / kObjects;
  for (const int c : counts) EXPECT_NEAR(c, expected, expected);  // +-100%
}

TEST(ZipfWorkloadTest, ObjectZeroIsRankOne) {
  ZipfWorkload w(kObjects);
  Rng rng(2);
  std::map<ObjectId, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[w.NextObject(3, 0, rng)];
  // Low-numbered objects dominate: the first 10 objects must hold far
  // more than 1% of the requests.
  int head = 0;
  for (ObjectId x = 0; x < 10; ++x) {
    const auto it = counts.find(x);
    if (it != counts.end()) head += it->second;
  }
  EXPECT_GT(head, 20000);
}

TEST(ZipfWorkloadTest, GatewayIndependent) {
  // Zipf popularity is global: two gateways with identical RNG streams
  // draw identical objects.
  ZipfWorkload w(kObjects);
  Rng a(3);
  Rng b(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(w.NextObject(0, 0, a), w.NextObject(52, 0, b));
  }
}

TEST(HotSitesWorkloadTest, HotSitesAreMinority) {
  HotSitesWorkload w(kObjects, 53, 0.9, /*site_seed=*/7);
  // With p = 0.9, roughly 10% of the 53 sites are hot.
  EXPECT_GE(w.hot_sites().size(), 1u);
  EXPECT_LE(w.hot_sites().size(), 16u);
}

TEST(HotSitesWorkloadTest, HotSitesReceiveNinetyPercent) {
  HotSitesWorkload w(kObjects, 53, 0.9, 7);
  std::set<NodeId> hot(w.hot_sites().begin(), w.hot_sites().end());
  Rng rng(8);
  int hot_requests = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const ObjectId x = w.NextObject(0, 0, rng);
    if (hot.count(x % 53) > 0) ++hot_requests;
  }
  EXPECT_NEAR(static_cast<double>(hot_requests) / kSamples, 0.9, 0.01);
}

TEST(HotSitesWorkloadTest, DeterministicForSameSeed) {
  HotSitesWorkload a(kObjects, 53, 0.9, 7);
  HotSitesWorkload b(kObjects, 53, 0.9, 7);
  EXPECT_EQ(a.hot_sites(), b.hot_sites());
}

TEST(HotPagesWorkloadTest, TenPercentOfPagesAreHot) {
  HotPagesWorkload w(kObjects, 0.1, 0.9, 9);
  EXPECT_EQ(w.hot_pages().size(), 100u);
}

TEST(HotPagesWorkloadTest, HotPagesGetNinetyPercent) {
  HotPagesWorkload w(kObjects, 0.1, 0.9, 9);
  std::set<ObjectId> hot(w.hot_pages().begin(), w.hot_pages().end());
  Rng rng(10);
  int hot_requests = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (hot.count(w.NextObject(0, 0, rng)) > 0) ++hot_requests;
  }
  EXPECT_NEAR(static_cast<double>(hot_requests) / kSamples, 0.9, 0.01);
}

TEST(HotPagesWorkloadTest, HotSetIsRandomNotPrefix) {
  HotPagesWorkload w(kObjects, 0.1, 0.9, 11);
  // A Fisher-Yates draw of 100 from 1000 is essentially never the exact
  // prefix 0..99.
  bool all_below_100 = true;
  for (const ObjectId x : w.hot_pages()) {
    if (x >= 100) all_below_100 = false;
  }
  EXPECT_FALSE(all_below_100);
}

class RegionalWorkloadTest : public ::testing::Test {
 protected:
  RegionalWorkloadTest()
      : topology_(net::MakeUunetBackbone()),
        workload_(10000, topology_) {}

  net::Topology topology_;
  RegionalWorkload workload_;
};

TEST_F(RegionalWorkloadTest, SlicesAreDisjointOnePercent) {
  std::set<ObjectId> seen;
  for (int r = 0; r < net::kNumRegions; ++r) {
    const auto [first, last] =
        workload_.PreferredRange(static_cast<net::Region>(r));
    EXPECT_EQ(last - first + 1, 100);  // 1% of 10000
    for (ObjectId x = first; x <= last; ++x) {
      EXPECT_TRUE(seen.insert(x).second) << "overlapping slices";
    }
  }
}

TEST_F(RegionalWorkloadTest, NinetyPercentFromOwnSlice) {
  // Pick one node per region and verify its preferred-slice hit rate.
  for (int r = 0; r < net::kNumRegions; ++r) {
    const auto region = static_cast<net::Region>(r);
    const NodeId node = topology_.NodesInRegion(region).front();
    const auto [first, last] = workload_.PreferredRange(region);
    Rng rng(20 + static_cast<std::uint64_t>(r));
    int in_slice = 0;
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i) {
      const ObjectId x = workload_.NextObject(node, 0, rng);
      if (x >= first && x <= last) ++in_slice;
    }
    // 90% preferred plus ~0.1% of the uniform tail landing in-slice.
    EXPECT_NEAR(static_cast<double>(in_slice) / kSamples, 0.901, 0.01);
  }
}

TEST_F(RegionalWorkloadTest, UniformTailCoversWholeDomain) {
  const NodeId node = topology_.NodesInRegion(net::Region::kEurope).front();
  Rng rng(33);
  bool saw_far_object = false;
  for (int i = 0; i < 50000; ++i) {
    if (workload_.NextObject(node, 0, rng) >= 5000) {
      saw_far_object = true;
      break;
    }
  }
  EXPECT_TRUE(saw_far_object);
}

TEST(MixtureWorkloadTest, DrawsFromAllComponents) {
  std::vector<MixtureWorkload::Component> components;
  components.push_back({std::make_unique<UniformWorkload>(kObjects), 1.0});
  components.push_back({std::make_unique<ZipfWorkload>(kObjects), 1.0});
  MixtureWorkload mix(std::move(components));
  EXPECT_EQ(mix.num_objects(), kObjects);
  Rng rng(40);
  // The zipf half concentrates on low ids; uniform half spreads. Sampled
  // together, low ids must be clearly over-represented but the tail still
  // present.
  int low = 0;
  int high = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const ObjectId x = mix.NextObject(0, 0, rng);
    if (x < 10) ++low;
    if (x >= kObjects / 2) ++high;
  }
  EXPECT_GT(low, kSamples / 20);
  EXPECT_GT(high, kSamples / 5);
}

TEST(DemandShiftWorkloadTest, SwitchesAtShiftTime) {
  auto before = std::make_unique<UniformWorkload>(kObjects);
  auto after = std::make_unique<ZipfWorkload>(kObjects);
  DemandShiftWorkload shift(std::move(before), std::move(after),
                            SecondsToSim(100.0));
  EXPECT_EQ(shift.name(), "uniform->zipf");
  Rng rng(50);
  // After the shift, low ids dominate (zipf); before, they do not.
  int low_before = 0;
  int low_after = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (shift.NextObject(0, SecondsToSim(50.0), rng) < 10) ++low_before;
    if (shift.NextObject(0, SecondsToSim(150.0), rng) < 10) ++low_after;
  }
  EXPECT_LT(low_before, kSamples / 50);
  EXPECT_GT(low_after, kSamples / 10);
}

TEST(DemandShiftWorkloadTest, BoundaryBelongsToAfter) {
  auto before = std::make_unique<UniformWorkload>(2);
  auto after = std::make_unique<UniformWorkload>(2);
  DemandShiftWorkload shift(std::move(before), std::move(after), 100);
  EXPECT_EQ(shift.shift_at(), 100);
  // No crash at exactly the boundary; draws remain in-domain.
  Rng rng(60);
  for (int i = 0; i < 10; ++i) {
    const ObjectId x = shift.NextObject(0, 100, rng);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 2);
  }
}

}  // namespace
}  // namespace radar::workload
