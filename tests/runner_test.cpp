// Experiment-engine tests: ThreadPool semantics and SweepRunner's
// determinism contract — sweep output is a pure function of the plan and
// root seed, independent of thread count and completion order.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "runner/experiment_plan.h"
#include "runner/sweep_runner.h"
#include "runner/thread_pool.h"
#include "test_config.h"

namespace radar::runner {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  EXPECT_EQ(ThreadPool(0).size(), 1);
  EXPECT_EQ(ThreadPool(-3).size(), 1);
  EXPECT_EQ(ThreadPool(2).size(), 2);
}

TEST(ThreadPoolTest, WorkersRunConcurrently) {
  // Each task blocks until all three are in flight at once; if the pool
  // serialized them this rendezvous could never complete. The generous
  // timeout only bounds a failure, it never slows a pass.
  constexpr int kTasks = 3;
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  int saw_all = 0;
  ThreadPool pool(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      ++started;
      cv.notify_all();
      if (cv.wait_for(lock, std::chrono::seconds(30),
                      [&] { return started == kTasks; })) {
        ++saw_all;
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(saw_all, kTasks);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  std::atomic<int> count{0};
  ThreadPool pool(2);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Submit([] { throw std::runtime_error("task failed"); });
  pool.Submit([&count] { count.fetch_add(1); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The failure does not poison the pool: the healthy tasks completed and
  // later batches run normally.
  EXPECT_EQ(count.load(), 2);
  pool.Submit([&count] { count.fetch_add(1); });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No Wait(): destruction itself must drain the queue.
  }
  EXPECT_EQ(count.load(), 32);
}

TEST(ExperimentPlanTest, DeriveRunSeedMatchesForkDraw) {
  for (std::uint64_t root : {1ULL, 42ULL, 0xDEADBEEFULL}) {
    for (std::uint64_t i : {0ULL, 1ULL, 7ULL, 1000ULL}) {
      Rng rng(root);
      EXPECT_EQ(DeriveRunSeed(root, i), rng.Fork(i).NextU64());
    }
  }
  // One golden pin (the full set lives in property_test.cpp): drift in
  // the derivation scheme silently reseeds every sweep, so fail loudly.
  EXPECT_EQ(DeriveRunSeed(1, 0), 11242100090092791929ULL);
}

TEST(ExperimentPlanTest, DeriveRunSeedDistinctAcrossIndices) {
  std::unordered_set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    seeds.insert(DeriveRunSeed(1, i));
  }
  EXPECT_EQ(seeds.size(), 4096u);
}

TEST(ExperimentPlanTest, SeedForFollowsPolicy) {
  driver::SimConfig config;
  ExperimentPlan forked("forked", 42, SeedPolicy::kForkPerRun);
  ExperimentPlan shared("shared", 42, SeedPolicy::kSharedRoot);
  for (int i = 0; i < 3; ++i) {
    forked.Add("run", config);
    shared.Add("run", config);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(forked.SeedFor(i), DeriveRunSeed(42, i));
    EXPECT_EQ(shared.SeedFor(i), 42u);
  }
}

TEST(ExperimentPlanTest, SeedPolicyNames) {
  EXPECT_STREQ(SeedPolicyName(SeedPolicy::kForkPerRun), "fork-per-run");
  EXPECT_STREQ(SeedPolicyName(SeedPolicy::kSharedRoot), "shared-root");
}

// A fast real-simulation plan: small scaled configs across distinct
// workloads so runs genuinely differ.
ExperimentPlan SmallPlan(std::uint64_t root_seed,
                         SeedPolicy policy = SeedPolicy::kForkPerRun) {
  ExperimentPlan plan("runner_test", root_seed, policy);
  driver::SimConfig config = driver::testing::ScaledPaperConfig(20.0);
  config.duration = SecondsToSim(300.0);
  for (const driver::WorkloadKind workload :
       {driver::WorkloadKind::kZipf, driver::WorkloadKind::kUniform,
        driver::WorkloadKind::kRegional}) {
    config.workload = workload;
    plan.Add(driver::WorkloadKindName(workload), config);
  }
  return plan;
}

std::string SweepBytes(const ExperimentPlan& plan, int jobs) {
  return SweepJson(SweepRunner(jobs).Run(plan)).Dump(2);
}

TEST(SweepRunnerTest, ByteIdenticalAcrossJobCounts) {
  const ExperimentPlan plan = SmallPlan(1);
  const std::string serial = SweepBytes(plan, 1);
  EXPECT_EQ(serial, SweepBytes(plan, 2));
  // jobs=0 selects hardware concurrency, whatever this machine has.
  EXPECT_EQ(serial, SweepBytes(plan, 0));
}

TEST(SweepRunnerTest, SameRootSeedReproducesBytes) {
  EXPECT_EQ(SweepBytes(SmallPlan(7), 2), SweepBytes(SmallPlan(7), 2));
}

TEST(SweepRunnerTest, DifferentRootSeedChangesResults) {
  EXPECT_NE(SweepBytes(SmallPlan(1), 2), SweepBytes(SmallPlan(2), 2));
}

TEST(SweepRunnerTest, ResultsArriveInPlanOrder) {
  const ExperimentPlan plan = SmallPlan(1);
  const SweepResult sweep = SweepRunner(2).Run(plan);
  ASSERT_EQ(sweep.runs.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(sweep.runs[i].name, plan.runs()[i].name);
    EXPECT_EQ(sweep.runs[i].seed, plan.SeedFor(i));
  }
}

TEST(SweepRunnerTest, SharedRootGivesEveryRunTheRootSeed) {
  const ExperimentPlan plan = SmallPlan(99, SeedPolicy::kSharedRoot);
  const SweepResult sweep = SweepRunner(2).Run(plan);
  for (const RunResult& run : sweep.runs) {
    EXPECT_EQ(run.seed, 99u);
  }
}

TEST(SweepRunnerTest, CustomExecutorReceivesDerivedSeed) {
  ExperimentPlan plan("custom", 5, SeedPolicy::kForkPerRun);
  driver::SimConfig config = driver::testing::ScaledPaperConfig(20.0);
  std::vector<std::uint64_t> seen(2, 0);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    plan.AddCustom("probe" + std::to_string(i), config,
                   [&seen, i](const driver::SimConfig& c) {
                     seen[i] = c.seed;
                     driver::RunReport report(c.metric_bucket);
                     report.workload_name = "custom";
                     return report;
                   });
  }
  const SweepResult sweep = SweepRunner(2).Run(plan);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], DeriveRunSeed(5, i));
    EXPECT_EQ(sweep.runs[i].report.workload_name, "custom");
  }
}

TEST(SweepRunnerTest, SweepJsonCarriesIdentityAndSchema) {
  const ExperimentPlan plan = SmallPlan(3, SeedPolicy::kForkPerRun);
  const SweepResult sweep = SweepRunner(2).Run(plan);
  const driver::JsonValue json = SweepJson(sweep);
  ASSERT_NE(json.Find("schema"), nullptr);
  EXPECT_EQ(json.Find("schema")->string_value(), kSweepSchema);
  EXPECT_EQ(json.Find("plan")->string_value(), "runner_test");
  EXPECT_EQ(json.Find("root_seed")->string_value(), "3");
  EXPECT_EQ(json.Find("seed_policy")->string_value(), "fork-per-run");
  EXPECT_EQ(json.Find("num_runs")->int_value(), 3);
  const auto& runs = json.Find("runs")->array();
  ASSERT_EQ(runs.size(), 3u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].Find("seed")->string_value(),
              std::to_string(plan.SeedFor(i)));
    EXPECT_EQ(runs[i].Find("report")->Find("schema")->string_value(),
              driver::kReportSchema);
  }
}

}  // namespace
}  // namespace radar::runner
