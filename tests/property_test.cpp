// Property-style parameterized sweeps: protocol invariants that must hold
// for every workload, seed, and policy combination, plus stream-level
// properties of Rng::Fork that the experiment engine's seeding relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_set>

#include "common/rng.h"
#include "driver/hosting_simulation.h"
#include "test_config.h"

namespace radar::driver {
namespace {

struct SweepCase {
  WorkloadKind workload;
  std::uint64_t seed;
  ArrivalProcess arrivals;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = WorkloadKindName(info.param.workload);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  name += "_seed" + std::to_string(info.param.seed);
  name += info.param.arrivals == ArrivalProcess::kDeterministic ? "_det"
                                                                : "_poisson";
  return name;
}

class ProtocolSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  SimConfig Config() const {
    SimConfig config = testing::ScaledPaperConfig();
    config.duration = SecondsToSim(1500.0);
    config.workload = GetParam().workload;
    config.seed = GetParam().seed;
    config.arrivals = GetParam().arrivals;
    return config;
  }
};

TEST_P(ProtocolSweepTest, InvariantsHoldEndToEnd) {
  const SimConfig config = Config();
  HostingSimulation sim(config);
  const RunReport report = sim.Run();

  // 1. Every generated request is eventually serviced (drops come only
  //    from in-flight races, which retries resolve).
  EXPECT_EQ(report.dropped_requests, 0);

  // 2. Redirector tables are a subset of physical replicas (checked via
  //    CheckRedirectorSubsetInvariant inside Run; re-check explicitly).
  sim.cluster().CheckRedirectorSubsetInvariant();

  // 3. Every object still has at least one replica and a positive total
  //    affinity, and host-side affinities agree with the redirector.
  auto& redirectors =
      const_cast<core::RedirectorGroup&>(sim.cluster().redirectors());
  std::int64_t objects = 0;
  for (int i = 0; i < redirectors.size(); ++i) {
    auto& r = redirectors.At(i);
    for (const ObjectId x : r.Objects()) {
      ++objects;
      ASSERT_GE(r.ReplicaCount(x), 1);
      for (const NodeId host : r.ReplicaHosts(x)) {
        EXPECT_EQ(sim.cluster().host(host).Affinity(x), r.AffinityOf(x, host))
            << "object " << x << " host " << host;
      }
    }
  }
  EXPECT_EQ(objects, config.num_objects);

  // 4. Replication never exploded: storage stays far below full mirroring.
  EXPECT_LT(report.final_avg_replicas, 10.0);

  // 5. Overhead traffic remains a small fraction of the total.
  EXPECT_LT(report.traffic.OverheadPercent(), 8.0);

  // 6. Latency is bounded at equilibrium (no runaway hot spot). Hot-sites
  //    starts 1.8x over capacity at the popular sites and needs longer
  //    than this sweep to fully drain its queues, so allow its backlog
  //    tail; everything else must be fully healthy.
  if (GetParam().workload == WorkloadKind::kHotSites) {
    EXPECT_LT(report.EquilibriumLatency(), 600.0);
  } else {
    EXPECT_LT(report.EquilibriumLatency(), 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ProtocolSweepTest,
    ::testing::Values(
        SweepCase{WorkloadKind::kZipf, 1, ArrivalProcess::kDeterministic},
        SweepCase{WorkloadKind::kZipf, 2, ArrivalProcess::kPoisson},
        SweepCase{WorkloadKind::kHotSites, 1,
                  ArrivalProcess::kDeterministic},
        SweepCase{WorkloadKind::kHotSites, 2, ArrivalProcess::kPoisson},
        SweepCase{WorkloadKind::kHotPages, 1,
                  ArrivalProcess::kDeterministic},
        SweepCase{WorkloadKind::kRegional, 1,
                  ArrivalProcess::kDeterministic},
        SweepCase{WorkloadKind::kRegional, 2, ArrivalProcess::kPoisson},
        SweepCase{WorkloadKind::kUniform, 1,
                  ArrivalProcess::kDeterministic}),
    CaseName);

// Stability sweep: with the Theorem 5 constraint satisfied the system
// settles (few relocations at the end); run across watermark settings.
struct StabilityCase {
  double hw;
  double lw;
};

class StabilitySweepTest : public ::testing::TestWithParam<StabilityCase> {};

TEST_P(StabilitySweepTest, RelocationsSubside) {
  SimConfig config = testing::ScaledPaperConfig();
  config.duration = SecondsToSim(2400.0);
  config.workload = WorkloadKind::kHotPages;
  config.protocol.high_watermark = GetParam().hw / 10.0;
  config.protocol.low_watermark = GetParam().lw / 10.0;
  ASSERT_TRUE(config.protocol.IsStable());

  HostingSimulation sim(config);
  const RunReport report = sim.Run();
  // The bulk of the copies happens early; the census stabilizes. Compare
  // the replica count late in the run against its overall peak: no
  // continuing churn means they stay close.
  const auto& census = report.avg_replicas.samples();
  ASSERT_GE(census.size(), 6u);
  const double last = census.back().value;
  const double prev = census[census.size() - 4].value;
  EXPECT_NEAR(last, prev, 0.25 * std::max(1.0, prev));
}

INSTANTIATE_TEST_SUITE_P(Watermarks, StabilitySweepTest,
                         ::testing::Values(StabilityCase{90.0, 80.0},
                                           StabilityCase{50.0, 40.0},
                                           StabilityCase{120.0, 100.0}),
                         [](const ::testing::TestParamInfo<StabilityCase>& i) {
                           return "hw" + std::to_string(static_cast<int>(i.param.hw)) +
                                  "_lw" + std::to_string(static_cast<int>(i.param.lw));
                         });

// Distribution-constant sweep: the closest replica's steady-state share
// under pure local demand follows c/(c+1) for any constant.
class ConstantSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ConstantSweepTest, NearShareFollowsConstant) {
  const double c = GetParam();
  core::MatrixDistanceOracle oracle(4);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) oracle.Set(a, b, b - a);
  }
  core::Redirector redirector(oracle, c);
  redirector.RegisterObject(1, 0);
  redirector.OnReplicaCreated(1, 3);
  int near = 0;
  constexpr int kRequests = 8000;
  for (int i = 0; i < kRequests; ++i) {
    if (redirector.ChooseReplica(1, 0) == 0) ++near;
  }
  EXPECT_NEAR(static_cast<double>(near) / kRequests, c / (c + 1.0), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Constants, ConstantSweepTest,
                         ::testing::Values(1.25, 1.5, 2.0, 3.0, 4.0, 8.0),
                         [](const ::testing::TestParamInfo<double>& i) {
                           const int whole = static_cast<int>(i.param);
                           const int frac =
                               static_cast<int>(i.param * 100.0) - whole * 100;
                           // Appending in place (rather than chaining
                           // operator+) sidesteps a GCC 12 -Wrestrict false
                           // positive on SSO string concatenation.
                           std::string name = "c";
                           name += std::to_string(whole);
                           name += '_';
                           name += std::to_string(frac);
                           return name;
                         });

// ---- Rng::Fork stream properties ----
//
// SweepRunner derives every run's seed from Rng(root).Fork(i); these
// properties are what make that scheme sound.

TEST(RngForkTest, StreamsDoNotCollideInFirstDraws) {
  // Eight sibling streams, 10k draws each: across 80k values from a
  // 64-bit generator a single collision would be astronomically unlikely
  // unless the streams actually overlap.
  constexpr int kStreams = 8;
  constexpr int kDraws = 10000;
  std::unordered_set<std::uint64_t> values;
  values.reserve(kStreams * kDraws);
  const Rng parent(1);
  for (std::uint64_t stream = 0; stream < kStreams; ++stream) {
    Rng child = parent.Fork(stream);
    for (int draw = 0; draw < kDraws; ++draw) {
      values.insert(child.NextU64());
    }
  }
  EXPECT_EQ(values.size(),
            static_cast<std::size_t>(kStreams) * kDraws);
}

TEST(RngForkTest, GoldenFirstDraws) {
  // Fork is a pure function of (root seed, stream index); these pins make
  // any drift in the mixing scheme — which would silently reseed every
  // sweep — a loud failure. Values were generated by this implementation
  // and are frozen here on purpose.
  struct Golden {
    std::uint64_t root;
    std::uint64_t index;
    std::uint64_t first_draw;
  };
  constexpr Golden kGolden[] = {
      {1, 0, 11242100090092791929ULL},
      {1, 1, 9989536413178078663ULL},
      {1, 7, 14315082538666323057ULL},
      {42, 0, 3857471732017721285ULL},
      {42, 1, 5521502160419750426ULL},
      {42, 7, 4004380607778735630ULL},
      {0xDEADBEEF, 0, 15822047089500106472ULL},
      {0xDEADBEEF, 1, 5908609621180793694ULL},
      {0xDEADBEEF, 7, 1317985041732576352ULL},
  };
  for (const Golden& g : kGolden) {
    EXPECT_EQ(Rng(g.root).Fork(g.index).NextU64(), g.first_draw)
        << "root=" << g.root << " index=" << g.index;
  }
}

TEST(RngForkTest, IndependentOfParentDrawPosition) {
  // Forking keys off the parent's seed origin, not its current state, so
  // a fork taken before or after the parent has produced values yields
  // the same child stream.
  Rng fresh(42);
  Rng advanced(42);
  (void)advanced.NextU64();
  (void)advanced.NextU64();
  (void)advanced.NextU64();
  Rng a = fresh.Fork(3);
  Rng b = advanced.Fork(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngForkTest, DistinctRootsYieldDistinctStreams) {
  EXPECT_NE(Rng(1).Fork(0).NextU64(), Rng(2).Fork(0).NextU64());
  EXPECT_NE(Rng(1).Fork(0).NextU64(), Rng(1).Fork(1).NextU64());
}

}  // namespace
}  // namespace radar::driver
