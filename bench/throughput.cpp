// End-to-end throughput of the request engine: simulated requests/sec and
// executed events/sec on the UUNET backbone under the Zipf workload, at
// three scales. This is the perf-trajectory benchmark: every run can emit
// a schema-versioned BENCH_perf.json (radar.perfbench/1) that CI archives,
// so hot-path regressions show up as a drop in the artifact series.
//
// Unlike the figure benches this measures wall clock, so its numbers are
// machine-dependent by design; the JSON separates the deterministic run
// facts (total_requests, events_executed) from the measured rates. Each
// rep also records process CPU time: on a contended machine wall clock
// charges the scheduler's preemptions to the benchmark, while CPU time
// stays close to the quiet-machine figure, so speedup comparisons should
// prefer requests_per_cpu_sec.
//
// Command line:
//   --json PATH   write the radar.perfbench/1 document to PATH
//   --reps N      repetitions per scale; the best (highest req/s) rep is
//                 reported (default $RADAR_PERF_REPS, else 1)
//   --scale NAME  run only the named scale (small / small-sparse /
//                 medium / large)
//   --shards K    run the shard-parallel engine with K shards (0 =
//                 serial engine; default $RADAR_BENCH_SHARDS, else 0).
//                 Sharded runs report the sharded mode's own request
//                 totals — compare them across K, not against serial.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "driver/config.h"
#include "driver/hosting_simulation.h"
#include "driver/report.h"
#include "driver/report_json.h"
#include "runner/shard_executor.h"

namespace {

using namespace radar;

constexpr const char* kPerfSchema = "radar.perfbench/1";

struct Scale {
  const char* name;
  double sim_seconds;
  ObjectId objects;
  net::OracleKind oracle;
};

// Four operating points: the small scale is CI's smoke, the large scale
// approaches the paper's Table 1 configuration (10k objects), and
// small-sparse reruns the small scale with the sparse gateway-pivot
// latency backend forced on — on the all-gateway UUNET backbone the
// report is byte-identical to small's, so the pair isolates the latency
// backend's hot-path cost (perf_gate compares them with --alias).
constexpr Scale kScales[] = {
    {"small", 60.0, 1'000, net::OracleKind::kDense},
    {"small-sparse", 60.0, 1'000, net::OracleKind::kSparse},
    {"medium", 120.0, 5'000, net::OracleKind::kDense},
    {"large", 240.0, 10'000, net::OracleKind::kDense},
};

struct Measurement {
  std::int64_t total_requests = 0;
  std::uint64_t events_executed = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  double requests_per_sec = 0.0;
  double events_per_sec = 0.0;
  double requests_per_cpu_sec = 0.0;
};

double ProcessCpuSeconds() {
  std::timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

double EnvOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

Measurement RunScale(const Scale& scale, std::uint64_t seed, int shards) {
  driver::SimConfig config;
  config.duration = SecondsToSim(scale.sim_seconds);
  config.num_objects = scale.objects;
  config.seed = seed;
  config.workload = driver::WorkloadKind::kZipf;
  config.shards = shards;
  config.oracle = scale.oracle;

  // Construction (routing tables, latency matrices, the shard pool) is
  // charged to the measurement: precomputation must pay for itself end
  // to end.
  const double cpu_start = ProcessCpuSeconds();
  const auto start = std::chrono::steady_clock::now();
  driver::HostingSimulation sim(config);
  std::unique_ptr<runner::PoolShardExecutor> executor;
  if (shards >= 1) {
    executor = std::make_unique<runner::PoolShardExecutor>(shards);
    sim.set_window_executor(executor.get());
  }
  const driver::RunReport report = sim.Run();
  const auto stop = std::chrono::steady_clock::now();
  const double cpu_stop = ProcessCpuSeconds();

  Measurement m;
  m.total_requests = report.total_requests;
  m.events_executed = sim.events_executed();
  m.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  m.cpu_seconds = cpu_stop - cpu_start;
  if (m.wall_seconds > 0.0) {
    m.requests_per_sec =
        static_cast<double>(m.total_requests) / m.wall_seconds;
    m.events_per_sec =
        static_cast<double>(m.events_executed) / m.wall_seconds;
  }
  if (m.cpu_seconds > 0.0) {
    m.requests_per_cpu_sec =
        static_cast<double>(m.total_requests) / m.cpu_seconds;
  }
  return m;
}

[[noreturn]] void UsageAndExit(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [--json PATH] [--reps N] [--scale NAME]"
               " [--shards K]\n"
               "  --json PATH   write the radar.perfbench/1 document\n"
               "  --reps N      repetitions per scale, best rep reported\n"
               "                (default $RADAR_PERF_REPS, else 1)\n"
               "  --scale NAME  run only this scale (small / small-sparse /"
               " medium / large)\n"
               "  --shards K    shard-parallel engine, K shards (0 =\n"
               "                serial; default $RADAR_BENCH_SHARDS)\n",
               argv0);
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string only_scale;
  int reps = static_cast<int>(EnvOr("RADAR_PERF_REPS", 1.0));
  int shards = static_cast<int>(EnvOr("RADAR_BENCH_SHARDS", 0.0));

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& flag) -> std::string {
      const std::string prefix = flag + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag.c_str());
        UsageAndExit(argv[0], 2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      UsageAndExit(argv[0], 0);
    } else if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      json_path = value_of("--json");
    } else if (arg == "--reps" || arg.rfind("--reps=", 0) == 0) {
      reps = std::atoi(value_of("--reps").c_str());
      if (reps < 1) {
        std::fprintf(stderr, "%s: --reps must be >= 1\n", argv[0]);
        UsageAndExit(argv[0], 2);
      }
    } else if (arg == "--scale" || arg.rfind("--scale=", 0) == 0) {
      only_scale = value_of("--scale");  // small/small-sparse/medium/large
    } else if (arg == "--shards" || arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(value_of("--shards").c_str());
      if (shards < 0) {
        std::fprintf(stderr, "%s: --shards must be >= 0\n", argv[0]);
        UsageAndExit(argv[0], 2);
      }
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   arg.c_str());
      UsageAndExit(argv[0], 2);
    }
  }

  const auto seed = static_cast<std::uint64_t>(EnvOr("RADAR_BENCH_SEED", 1.0));

  driver::JsonValue doc = driver::JsonValue::MakeObject();
  doc.Set("schema", kPerfSchema);
  doc.Set("benchmark", "throughput");
  doc.Set("topology", "uunet");
  doc.Set("workload", "zipf");
  doc.Set("seed", static_cast<std::int64_t>(seed));
  doc.Set("reps", static_cast<std::int64_t>(reps));
  doc.Set("shards", static_cast<std::int64_t>(shards));
  driver::JsonValue scales = driver::JsonValue::MakeArray();

  std::printf("==== throughput: UUNET + Zipf, %d rep(s)/scale, shards=%d ====\n",
              reps, shards);
  bool matched = false;
  for (const Scale& scale : kScales) {
    if (!only_scale.empty() && only_scale != scale.name) continue;
    matched = true;
    Measurement best;
    for (int rep = 0; rep < reps; ++rep) {
      const Measurement m = RunScale(scale, seed, shards);
      if (m.requests_per_sec > best.requests_per_sec) best = m;
    }
    std::printf(
        "%-7s sim=%6.0fs objects=%6d  requests=%9lld  events=%10llu  "
        "wall=%7.3fs  %10.0f req/s  %10.0f ev/s  %10.0f req/cpu-s\n",
        scale.name, scale.sim_seconds, scale.objects,
        static_cast<long long>(best.total_requests),
        static_cast<unsigned long long>(best.events_executed),
        best.wall_seconds, best.requests_per_sec, best.events_per_sec,
        best.requests_per_cpu_sec);

    driver::JsonValue entry = driver::JsonValue::MakeObject();
    entry.Set("name", scale.name);
    entry.Set("sim_seconds", scale.sim_seconds);
    entry.Set("objects", static_cast<std::int64_t>(scale.objects));
    entry.Set("total_requests", best.total_requests);
    entry.Set("events_executed",
              static_cast<std::int64_t>(best.events_executed));
    entry.Set("wall_seconds", best.wall_seconds);
    entry.Set("cpu_seconds", best.cpu_seconds);
    entry.Set("requests_per_sec", best.requests_per_sec);
    entry.Set("events_per_sec", best.events_per_sec);
    entry.Set("requests_per_cpu_sec", best.requests_per_cpu_sec);
    scales.Append(std::move(entry));
  }
  if (!matched) {
    std::fprintf(stderr, "%s: unknown scale '%s'\n", argv[0],
                 only_scale.c_str());
    UsageAndExit(argv[0], 2);
  }
  doc.Set("scales", std::move(scales));

  if (!json_path.empty()) {
    std::string error;
    if (!driver::WriteJsonFile(json_path, doc, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return 0;
}
