#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "fault/fault_plan.h"
#include "net/topology_gen.h"
#include "net/topology_io.h"
#include "net/uunet.h"

namespace radar::bench {
namespace {

[[noreturn]] void UsageAndExit(const char* argv0, int code) {
  std::fprintf(
      stderr,
      "usage: %s [--jobs N] [--json PATH] [--fault-plan FILE]"
      " [--replica-floor K] [--shards K] [--topology SPEC|FILE]"
      " [--oracle KIND]\n"
      "  --jobs N           worker threads (0 = hardware concurrency;\n"
      "                     default $RADAR_BENCH_JOBS, else 1)\n"
      "  --json PATH        write the sweep as a SweepJson document\n"
      "  --fault-plan FILE  inject faults (see fault/fault_plan.h)\n"
      "  --replica-floor K  re-replicate objects below K live copies\n"
      "  --shards K         shard-parallel engine with K shards (0 =\n"
      "                     serial; default $RADAR_BENCH_SHARDS, else 0)\n"
      "  --topology S       backbone: a ts:/sf: generator spec or a\n"
      "                     topology file (default $RADAR_BENCH_TOPOLOGY,\n"
      "                     else the built-in UUNET backbone)\n"
      "  --oracle KIND      auto|dense|sparse latency backend (default\n"
      "                     $RADAR_BENCH_ORACLE, else auto)\n",
      argv0);
  std::exit(code);
}

std::string EnvStrOr(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? value : fallback;
}

}  // namespace

double EnvOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

std::vector<driver::WorkloadKind> PaperWorkloads() {
  return {driver::WorkloadKind::kZipf, driver::WorkloadKind::kHotSites,
          driver::WorkloadKind::kHotPages, driver::WorkloadKind::kRegional};
}

driver::SimConfig PaperConfig() {
  driver::SimConfig config;
  config.duration = SecondsToSim(EnvOr("RADAR_BENCH_DURATION", 2400.0));
  config.num_objects =
      static_cast<ObjectId>(EnvOr("RADAR_BENCH_OBJECTS", 10000.0));
  config.seed = static_cast<std::uint64_t>(EnvOr("RADAR_BENCH_SEED", 1.0));
  config.shards = static_cast<int>(EnvOr("RADAR_BENCH_SHARDS", 0.0));
  const std::string oracle = EnvStrOr("RADAR_BENCH_ORACLE", "auto");
  if (oracle == "dense") {
    config.oracle = net::OracleKind::kDense;
  } else if (oracle == "sparse") {
    config.oracle = net::OracleKind::kSparse;
  } else {
    config.oracle = net::OracleKind::kAuto;
  }
  return config;
}

runner::ExperimentPlan PaperPlan(const std::string& name) {
  return runner::ExperimentPlan(
      name, static_cast<std::uint64_t>(EnvOr("RADAR_BENCH_SEED", 1.0)),
      runner::SeedPolicy::kSharedRoot);
}

BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions options;
  options.jobs = static_cast<int>(EnvOr("RADAR_BENCH_JOBS", 1.0));
  options.shards = static_cast<int>(EnvOr("RADAR_BENCH_SHARDS", 0.0));
  options.topology = EnvStrOr("RADAR_BENCH_TOPOLOGY", "");

  const auto value_of = [&](int* i, const std::string& arg,
                            const std::string& flag) -> std::string {
    const std::string prefix = flag + "=";
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag.c_str());
      UsageAndExit(argv[0], 2);
    }
    return argv[++*i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      UsageAndExit(argv[0], 0);
    } else if (arg == "--jobs" || arg.rfind("--jobs=", 0) == 0) {
      const std::string value = value_of(&i, arg, "--jobs");
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "%s: --jobs must be a non-negative integer\n",
                     argv[0]);
        UsageAndExit(argv[0], 2);
      }
      options.jobs = static_cast<int>(parsed);
    } else if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      options.json_path = value_of(&i, arg, "--json");
      if (options.json_path.empty()) {
        std::fprintf(stderr, "%s: --json needs a path\n", argv[0]);
        UsageAndExit(argv[0], 2);
      }
    } else if (arg == "--fault-plan" || arg.rfind("--fault-plan=", 0) == 0) {
      options.fault_plan_file = value_of(&i, arg, "--fault-plan");
      if (options.fault_plan_file.empty()) {
        std::fprintf(stderr, "%s: --fault-plan needs a path\n", argv[0]);
        UsageAndExit(argv[0], 2);
      }
    } else if (arg == "--replica-floor" ||
               arg.rfind("--replica-floor=", 0) == 0) {
      const std::string value = value_of(&i, arg, "--replica-floor");
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        std::fprintf(stderr,
                     "%s: --replica-floor must be a non-negative integer\n",
                     argv[0]);
        UsageAndExit(argv[0], 2);
      }
      options.replica_floor = static_cast<int>(parsed);
    } else if (arg == "--shards" || arg.rfind("--shards=", 0) == 0) {
      const std::string value = value_of(&i, arg, "--shards");
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "%s: --shards must be a non-negative integer\n",
                     argv[0]);
        UsageAndExit(argv[0], 2);
      }
      options.shards = static_cast<int>(parsed);
      // Exported so PaperConfig() — always called after parsing — sees
      // the flag without every bench threading it through by hand.
      setenv("RADAR_BENCH_SHARDS", value.c_str(), 1);
    } else if (arg == "--topology" || arg.rfind("--topology=", 0) == 0) {
      options.topology = value_of(&i, arg, "--topology");
      if (options.topology.empty()) {
        std::fprintf(stderr, "%s: --topology needs a spec or file\n",
                     argv[0]);
        UsageAndExit(argv[0], 2);
      }
    } else if (arg == "--oracle" || arg.rfind("--oracle=", 0) == 0) {
      const std::string value = value_of(&i, arg, "--oracle");
      if (value != "auto" && value != "dense" && value != "sparse") {
        std::fprintf(stderr, "%s: --oracle must be auto, dense, or sparse\n",
                     argv[0]);
        UsageAndExit(argv[0], 2);
      }
      // Exported for PaperConfig(), like --shards.
      setenv("RADAR_BENCH_ORACLE", value.c_str(), 1);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   arg.c_str());
      UsageAndExit(argv[0], 2);
    }
  }
  return options;
}

net::Topology MakeBenchTopology(const BenchOptions& options) {
  if (options.topology.empty()) return net::MakeUunetBackbone();
  if (net::IsTopologySpec(options.topology)) {
    return net::GenerateTopology(options.topology);
  }
  std::ifstream in(options.topology);
  if (!in) {
    std::fprintf(stderr, "error: cannot open topology file '%s'\n",
                 options.topology.c_str());
    std::exit(2);
  }
  std::string error;
  auto parsed = net::ReadTopology(in, &error);
  if (!parsed) {
    std::fprintf(stderr, "error: %s: %s\n", options.topology.c_str(),
                 error.c_str());
    std::exit(2);
  }
  return *std::move(parsed);
}

void ApplyFaultOptions(const BenchOptions& options,
                       driver::SimConfig* config) {
  config->replica_floor = options.replica_floor;
  if (options.fault_plan_file.empty()) return;
  std::string error;
  auto plan = fault::ParseFaultPlanFile(options.fault_plan_file, &error);
  if (!plan) {
    std::fprintf(stderr, "error: %s: %s\n", options.fault_plan_file.c_str(),
                 error.c_str());
    std::exit(2);
  }
  config->faults = *std::move(plan);
}

runner::SweepResult RunSweep(const runner::ExperimentPlan& plan,
                             const BenchOptions& options) {
  const runner::SweepRunner engine(options.jobs);
  std::fprintf(stderr, "[%s] %zu run(s), jobs=%d\n", plan.name().c_str(),
               plan.size(), engine.jobs());
  runner::SweepResult result = engine.Run(plan);
  std::fprintf(stderr, "[%s] sweep finished in %.2fs wall\n",
               plan.name().c_str(), result.wall_seconds);
  if (!options.json_path.empty()) {
    std::string error;
    if (!driver::WriteJsonFile(options.json_path, runner::SweepJson(result),
                               &error)) {
      std::fprintf(stderr, "[%s] %s\n", plan.name().c_str(), error.c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "[%s] wrote %s\n", plan.name().c_str(),
                 options.json_path.c_str());
  }
  return result;
}

void PrintHeader(std::ostream& os, const std::string& artefact,
                 const driver::SimConfig& config) {
  os << "==== " << artefact << " ====\n";
  os << "Table 1 parameters: objects=" << config.num_objects
     << " object-size=" << config.object_bytes << "B"
     << " node-rate=" << config.node_request_rate << "req/s"
     << " capacity=" << config.server_capacity << "req/s"
     << " hw=" << config.protocol.high_watermark
     << " lw=" << config.protocol.low_watermark
     << " u=" << config.protocol.deletion_threshold_u
     << " m=" << config.protocol.replication_threshold_m << "\n";
  os << "run: duration=" << SimToSeconds(config.duration)
     << "s seed=" << config.seed << "\n\n";
}

}  // namespace radar::bench
