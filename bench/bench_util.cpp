#include "bench_util.h"

#include <cstdlib>
#include <ostream>

namespace radar::bench {

double EnvOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

std::vector<driver::WorkloadKind> PaperWorkloads() {
  return {driver::WorkloadKind::kZipf, driver::WorkloadKind::kHotSites,
          driver::WorkloadKind::kHotPages, driver::WorkloadKind::kRegional};
}

driver::SimConfig PaperConfig() {
  driver::SimConfig config;
  config.duration = SecondsToSim(EnvOr("RADAR_BENCH_DURATION", 2400.0));
  config.num_objects =
      static_cast<ObjectId>(EnvOr("RADAR_BENCH_OBJECTS", 10000.0));
  config.seed = static_cast<std::uint64_t>(EnvOr("RADAR_BENCH_SEED", 1.0));
  return config;
}

driver::RunReport RunOnce(const driver::SimConfig& config) {
  driver::HostingSimulation simulation(config);
  return simulation.Run();
}

void PrintHeader(std::ostream& os, const std::string& artefact,
                 const driver::SimConfig& config) {
  os << "==== " << artefact << " ====\n";
  os << "Table 1 parameters: objects=" << config.num_objects
     << " object-size=" << config.object_bytes << "B"
     << " node-rate=" << config.node_request_rate << "req/s"
     << " capacity=" << config.server_capacity << "req/s"
     << " hw=" << config.protocol.high_watermark
     << " lw=" << config.protocol.low_watermark
     << " u=" << config.protocol.deletion_threshold_u
     << " m=" << config.protocol.replication_threshold_m << "\n";
  os << "run: duration=" << SimToSeconds(config.duration)
     << "s seed=" << config.seed << "\n\n";
}

}  // namespace radar::bench
