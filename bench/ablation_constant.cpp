// Ablation A1: the request-distribution constant (the "2" of Fig. 2).
//
// The constant trades proximity for load spreading: the closest replica
// keeps a c/(c+1) share of balanced demand, so larger constants reduce
// backbone bandwidth but weaken load shedding (an overloaded replica
// keeps more of its traffic). The paper picks 2 "somewhat arbitrarily"
// and defers the sweep to [1]; this bench performs it.
#include <iomanip>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace radar;
  const bench::BenchOptions options = bench::ParseBenchArgs(argc, argv);
  driver::SimConfig base = bench::PaperConfig();
  bench::PrintHeader(
      std::cout, "Ablation A1: distribution constant sweep (zipf)", base);

  runner::ExperimentPlan plan = bench::PaperPlan("ablation_constant");
  const double constants[] = {1.25, 1.5, 2.0, 3.0, 4.0};
  for (const double c : constants) {
    driver::SimConfig config = base;
    config.workload = driver::WorkloadKind::kZipf;
    config.protocol.distribution_constant = c;
    plan.Add("c=" + std::to_string(c).substr(0, 4), config);
  }

  const runner::SweepResult sweep = bench::RunSweep(plan, options);

  std::cout << "  c      bw(byte-hops/s)  latency(s)  maxload(req/s)  "
               "replicas\n";
  for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
    const driver::RunReport& report = sweep.runs[i].report;
    const std::size_t n =
        report.CompleteBuckets(report.max_load.num_buckets());
    const double late_max =
        n >= 3 ? report.max_load.MaxOver(n - 3, n - 1) : 0.0;
    std::cout << std::fixed << std::setw(5) << std::setprecision(2)
              << constants[i] << std::setw(17) << std::setprecision(0)
              << report.EquilibriumBandwidthRate() << std::setw(12)
              << std::setprecision(4) << report.EquilibriumLatency()
              << std::setw(16) << std::setprecision(1) << late_max
              << std::setw(10) << std::setprecision(2)
              << report.final_avg_replicas << "\n";
  }
  std::cout << "\n  (expected: larger c -> less spill to distant replicas"
            << " -> lower bandwidth,\n   but weaker load spreading; the"
            << " paper's c = 2 balances the two)\n";
  return 0;
}
