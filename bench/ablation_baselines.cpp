// Ablation A3: the baselines the paper's Sec. 3 argues against.
//
//  - round-robin distribution spreads load but ignores proximity;
//  - closest-only distribution honours proximity but cannot relieve a
//    locally swamped server;
//  - static placement never adapts;
//  - full replication is the storage-unbounded lower bound on bandwidth.
//
// Expected shape: radar/radar approaches full replication's bandwidth at
// ~1/20 of its storage; round-robin burns bandwidth; closest-only matches
// radar on bandwidth for these globally-spread workloads but fails on
// locally concentrated overload (see the integration test for that
// scenario — it needs an asymmetric demand pattern none of the paper's
// four workloads produce).
#include <iomanip>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace radar;
  const bench::BenchOptions options = bench::ParseBenchArgs(argc, argv);
  driver::SimConfig base = bench::PaperConfig();
  bench::PrintHeader(std::cout, "Ablation A3: baseline policies", base);

  struct Policy {
    const char* label;
    baselines::DistributionPolicy distribution;
    baselines::PlacementPolicy placement;
  };
  const Policy policies[] = {
      {"radar/radar", baselines::DistributionPolicy::kRadar,
       baselines::PlacementPolicy::kRadar},
      {"round-robin/radar", baselines::DistributionPolicy::kRoundRobin,
       baselines::PlacementPolicy::kRadar},
      {"closest/radar", baselines::DistributionPolicy::kClosest,
       baselines::PlacementPolicy::kRadar},
      {"closest/static", baselines::DistributionPolicy::kClosest,
       baselines::PlacementPolicy::kStatic},
      {"closest/full-repl", baselines::DistributionPolicy::kClosest,
       baselines::PlacementPolicy::kFullReplication},
  };
  const driver::WorkloadKind workloads[] = {driver::WorkloadKind::kRegional,
                                            driver::WorkloadKind::kZipf};

  runner::ExperimentPlan plan = bench::PaperPlan("ablation_baselines");
  for (const driver::WorkloadKind kind : workloads) {
    for (const Policy& policy : policies) {
      driver::SimConfig config = base;
      config.workload = kind;
      config.distribution = policy.distribution;
      config.placement = policy.placement;
      if (policy.placement != baselines::PlacementPolicy::kRadar) {
        config.duration = base.duration / 3;  // no adaptation to wait for
      }
      plan.Add(std::string(driver::WorkloadKindName(kind)) + "/" +
                   policy.label,
               config);
    }
  }

  const runner::SweepResult sweep = bench::RunSweep(plan, options);

  std::size_t next = 0;
  for (const driver::WorkloadKind kind : workloads) {
    std::cout << "---- workload: " << driver::WorkloadKindName(kind)
              << " ----\n";
    std::cout << "  policy               bw(byte-hops/s)  latency(s)  "
                 "maxload   replicas\n";
    for (const Policy& policy : policies) {
      const driver::RunReport& report = sweep.runs[next++].report;
      const std::size_t n =
          report.CompleteBuckets(report.max_load.num_buckets());
      const double late_max =
          n >= 3 ? report.max_load.MaxOver(n - 3, n - 1) : 0.0;
      std::cout << std::fixed << "  " << std::left << std::setw(21)
                << policy.label << std::right << std::setw(15)
                << std::setprecision(0)
                << report.EquilibriumBandwidthRate() << std::setw(12)
                << std::setprecision(4) << report.EquilibriumLatency()
                << std::setw(9) << std::setprecision(1) << late_max
                << std::setw(11) << std::setprecision(2)
                << report.final_avg_replicas << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
