// Shared helpers for the per-figure/table benchmark binaries.
//
// Each bench binary regenerates one artefact of the paper's evaluation
// (Sec. 6.2) as textual rows/series. Environment knobs keep full paper-
// scale runs available without recompiling:
//   RADAR_BENCH_DURATION   simulated seconds per run (default 2400)
//   RADAR_BENCH_OBJECTS    objects in the system (default 10000)
//   RADAR_BENCH_SEED       root RNG seed (default 1)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/config.h"
#include "driver/hosting_simulation.h"
#include "driver/report.h"

namespace radar::bench {

/// The four workloads of Sec. 6.1, in the paper's reporting order.
std::vector<driver::WorkloadKind> PaperWorkloads();

/// A SimConfig preset with Table 1 values and the environment overrides
/// applied.
driver::SimConfig PaperConfig();

/// Runs one simulation and returns the report (convenience wrapper).
driver::RunReport RunOnce(const driver::SimConfig& config);

/// Prints the standard bench header: which figure/table, parameters used.
void PrintHeader(std::ostream& os, const std::string& artefact,
                 const driver::SimConfig& config);

/// Reads an environment variable as double, with a default.
double EnvOr(const char* name, double fallback);

}  // namespace radar::bench
