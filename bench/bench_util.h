// Shared helpers for the per-figure/table benchmark binaries.
//
// Each bench binary regenerates one artefact of the paper's evaluation
// (Sec. 6.2). Since PR 3 the benches run through the experiment engine
// (src/runner): every binary builds an ExperimentPlan, executes it on a
// SweepRunner, and prints from the collected results — so independent
// runs execute concurrently under --jobs and the whole sweep can be
// archived as a schema-versioned JSON artefact with --json.
//
// Command line (every bench binary):
//   --jobs N      worker threads (0 = hardware concurrency;
//                 default $RADAR_BENCH_JOBS, else 1)
//   --json PATH   write the sweep's SweepJson document to PATH
//
// Environment knobs keep full paper-scale runs available without
// recompiling:
//   RADAR_BENCH_DURATION   simulated seconds per run (default 2400)
//   RADAR_BENCH_OBJECTS    objects in the system (default 10000)
//   RADAR_BENCH_SEED       root RNG seed (default 1)
//   RADAR_BENCH_JOBS       default worker-thread count
//   RADAR_BENCH_SHARDS     shard-parallel engine shard count (default 0 =
//                          serial; reports are identical for any K >= 1)
//   RADAR_BENCH_TOPOLOGY   backbone override: a "ts:"/"sf:" generator
//                          spec (net/topology_gen.h) or a topology file
//                          (default: the built-in UUNET backbone)
//   RADAR_BENCH_ORACLE     latency backend: auto|dense|sparse
//                          (default auto)
//
// Results are bit-identical for any --jobs value: per-run seeds come from
// the plan, and each simulation is self-contained.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/config.h"
#include "driver/hosting_simulation.h"
#include "driver/report.h"
#include "runner/experiment_plan.h"
#include "runner/sweep_runner.h"

namespace radar::bench {

/// The four workloads of Sec. 6.1, in the paper's reporting order.
std::vector<driver::WorkloadKind> PaperWorkloads();

/// A SimConfig preset with Table 1 values and the environment overrides
/// applied.
driver::SimConfig PaperConfig();

/// A plan rooted at the bench seed with the paper's shared-root seeding
/// (every run sees the same workload realization, so policy comparisons
/// are paired — the paper's methodology).
runner::ExperimentPlan PaperPlan(const std::string& name);

struct BenchOptions {
  int jobs = 1;           ///< worker threads; 0 = hardware concurrency
  std::string json_path;  ///< empty = no JSON artefact
  std::string fault_plan_file;  ///< empty = perfect world
  int replica_floor = 0;        ///< 0 = no self-healing floor
  int shards = 0;               ///< 0 = serial engine; K = sharded engine
  /// Backbone override: a "ts:"/"sf:" generator spec or a topology file;
  /// empty = the built-in UUNET backbone. See MakeBenchTopology.
  std::string topology;
};

/// Parses --jobs/--json/--fault-plan/--replica-floor/--shards/--topology/
/// --oracle (either "--flag value" or "--flag=value") plus --help. jobs
/// defaults to $RADAR_BENCH_JOBS, shards to $RADAR_BENCH_SHARDS, topology
/// to $RADAR_BENCH_TOPOLOGY, oracle to $RADAR_BENCH_ORACLE. --shards and
/// --oracle also export their environment variable so PaperConfig()
/// (called after parsing in every bench) picks the value up without
/// per-binary plumbing. Prints usage and exits(2) on a malformed command
/// line, exits(0) on --help.
BenchOptions ParseBenchArgs(int argc, char** argv);

/// The backbone selected by options.topology: the UUNET default when
/// empty, a generated topology for a "ts:"/"sf:" spec, or a file load
/// (exits(2) on failure, matching radar_sim).
net::Topology MakeBenchTopology(const BenchOptions& options);

/// Loads options.fault_plan_file (when set) and copies the plan plus
/// options.replica_floor into the config. Exits(2) on a parse failure so
/// bench binaries share radar_sim's failure behaviour.
void ApplyFaultOptions(const BenchOptions& options,
                       driver::SimConfig* config);

/// Executes the plan with options.jobs threads; writes SweepJson to
/// options.json_path when set (exits(1) on I/O failure). Progress and
/// wall-clock go to stderr so stdout — the printed artefact — stays
/// byte-identical across job counts.
runner::SweepResult RunSweep(const runner::ExperimentPlan& plan,
                             const BenchOptions& options);

/// Prints the standard bench header: which figure/table, parameters used.
void PrintHeader(std::ostream& os, const std::string& artefact,
                 const driver::SimConfig& config);

/// Reads an environment variable as double, with a default.
double EnvOr(const char* name, double fallback);

}  // namespace radar::bench
