// Microbenchmarks (google-benchmark) for the hot paths of the library:
// request distribution, routing-table construction, workload sampling,
// path-latency lookup, the event queue, host-side access counting, and a
// DispatchRequest-loop macro case over the full driver.
#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>

#include "common/rng.h"
#include "common/slab_map.h"
#include "common/zipf.h"
#include "core/cluster.h"
#include "core/redirector.h"
#include "driver/config.h"
#include "driver/hosting_simulation.h"
#include "net/path_latency.h"
#include "net/routing.h"
#include "net/uunet.h"
#include "sim/event_queue.h"
#include "sim/transfer.h"
#include "workload/workload.h"

namespace {

using namespace radar;

core::MatrixDistanceOracle MakeOracle(std::int32_t n) {
  core::MatrixDistanceOracle oracle(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      oracle.Set(a, b, (b - a) % 7 + 1);
    }
  }
  return oracle;
}

void BM_ChooseReplica(benchmark::State& state) {
  const auto replicas = static_cast<int>(state.range(0));
  core::MatrixDistanceOracle oracle = MakeOracle(53);
  core::Redirector redirector(oracle, 2.0);
  redirector.RegisterObject(1, 0);
  for (NodeId host = 1; host < replicas; ++host) {
    redirector.OnReplicaCreated(1, host);
  }
  Rng rng(1);
  for (auto _ : state) {
    const auto gateway = static_cast<NodeId>(rng.NextBounded(53));
    benchmark::DoNotOptimize(redirector.ChooseReplica(1, gateway));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChooseReplica)->Arg(1)->Arg(2)->Arg(4)->Arg(16)->Arg(53);

void BM_RoutingTableBuild(benchmark::State& state) {
  const net::Topology topology = net::MakeUunetBackbone();
  for (auto _ : state) {
    net::RoutingTable routing(topology.graph());
    benchmark::DoNotOptimize(routing.HopDistance(0, 52));
  }
}
BENCHMARK(BM_RoutingTableBuild);

void BM_ReedsZipfSample(benchmark::State& state) {
  ReedsZipf zipf(10000);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReedsZipfSample);

void BM_ExactZipfSample(benchmark::State& state) {
  ExactZipf zipf(10000);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactZipfSample);

// The per-request latency computation as it existed before the
// precomputed matrices: walk the canonical path and scan each hop's
// adjacency list for the connecting link. Kept as the baseline half of a
// before/after pair with BM_PathLatencyMatrix.
SimTime WalkTransferLatency(const net::RoutingTable& routing,
                            const net::Graph& graph, NodeId a, NodeId b,
                            std::int64_t object_bytes) {
  const std::vector<NodeId>& path = routing.Path(a, b);
  SimTime total = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    for (const net::Edge& e : graph.Neighbors(path[i - 1])) {
      if (e.to != path[i]) continue;
      total += e.delay + sim::SerializationTime(object_bytes, e.bandwidth_bps);
      break;
    }
  }
  return total;
}

void BM_PathLatencyWalk(benchmark::State& state) {
  const net::Topology topology = net::MakeUunetBackbone();
  const net::RoutingTable routing(topology.graph());
  Rng rng(5);
  const auto n = topology.graph().num_nodes();
  for (auto _ : state) {
    const auto a = static_cast<NodeId>(rng.NextBounded(n));
    const auto b = static_cast<NodeId>(rng.NextBounded(n));
    benchmark::DoNotOptimize(
        WalkTransferLatency(routing, topology.graph(), a, b, 100'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathLatencyWalk);

void BM_PathLatencyMatrix(benchmark::State& state) {
  const net::Topology topology = net::MakeUunetBackbone();
  const net::RoutingTable routing(topology.graph());
  const net::PathLatencyMatrix matrix(routing, topology.graph(), 100'000);
  Rng rng(5);
  const auto n = topology.graph().num_nodes();
  for (auto _ : state) {
    const auto a = static_cast<NodeId>(rng.NextBounded(n));
    const auto b = static_cast<NodeId>(rng.NextBounded(n));
    benchmark::DoNotOptimize(matrix.Transfer(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathLatencyMatrix);

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue;
  Rng rng(3);
  for (std::size_t i = 0; i < depth; ++i) {
    queue.Push(static_cast<SimTime>(rng.NextBounded(1'000'000)), [] {});
  }
  SimTime base = 1'000'000;
  for (auto _ : state) {
    queue.Push(base + static_cast<SimTime>(rng.NextBounded(1000)), [] {});
    benchmark::DoNotOptimize(queue.Pop());
    ++base;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_RecordServiced(benchmark::State& state) {
  core::ProtocolParams params;
  core::HostAgent agent(0, 53, &params);
  agent.AddInitialReplica(1);
  const std::vector<NodeId> path{0, 7, 13, 21, 35};
  for (auto _ : state) {
    agent.RecordServiced(1, path);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordServiced);

void BM_PlacementRound(benchmark::State& state) {
  // One host deciding placement for 200 objects with populated counters.
  const auto objects = static_cast<ObjectId>(state.range(0));
  core::MatrixDistanceOracle oracle = MakeOracle(53);
  for (auto _ : state) {
    state.PauseTiming();
    core::ProtocolParams params;
    core::Cluster cluster(53, oracle, params, {0});
    Rng rng(4);
    for (ObjectId x = 0; x < objects; ++x) {
      cluster.PlaceInitialObject(x, 0);
      std::vector<NodeId> path{0,
                               static_cast<NodeId>(1 + rng.NextBounded(52))};
      for (int i = 0; i < 20; ++i) {
        cluster.host(0).RecordServiced(x, path);
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        cluster.RunPlacement(0, SecondsToSim(100.0)));
  }
}
BENCHMARK(BM_PlacementRound)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

void BM_DispatchRequestLoop(benchmark::State& state) {
  // Macro case: the full engine (dispatch -> arrive -> complete, periodic
  // ticks included) over the UUNET + Zipf configuration, measured as
  // simulated requests per wall second. The per-item rate here should
  // track bench/throughput's large scale.
  const double kSimSeconds = 10.0;
  std::int64_t requests = 0;
  for (auto _ : state) {
    state.PauseTiming();
    driver::SimConfig config;
    config.duration = SecondsToSim(kSimSeconds);
    config.workload = driver::WorkloadKind::kZipf;
    driver::HostingSimulation sim(config);
    state.ResumeTiming();
    const driver::RunReport report = sim.Run();
    requests += report.total_requests;
    benchmark::DoNotOptimize(report.total_requests);
  }
  state.SetItemsProcessed(requests);
}
BENCHMARK(BM_DispatchRequestLoop)->Unit(benchmark::kMillisecond);

// Object-table record: the shape HostAgent/Redirector keep per object.
struct LookupRecord {
  int aff = 1;
  std::int64_t rcnt = 0;
};

void BM_EntryLookupMap(benchmark::State& state) {
  // The pre-overhaul layout: per-object records behind a hash map. Every
  // probe hashes the id and chases at least one node pointer.
  constexpr ObjectId kObjects = 10'000;
  std::unordered_map<ObjectId, LookupRecord> table;
  table.reserve(kObjects);
  for (ObjectId x = 0; x < kObjects; ++x) table.emplace(x, LookupRecord{});
  Rng rng(11);
  for (auto _ : state) {
    const auto x = static_cast<ObjectId>(rng.NextBounded(kObjects));
    auto it = table.find(x);
    ++it->second.rcnt;
    benchmark::DoNotOptimize(it->second.rcnt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EntryLookupMap);

void BM_EntryLookupSlab(benchmark::State& state) {
  // The slab layout (common/slab_map.h): dense id -> handle index in
  // front of chunked storage — two predictable loads, no hashing.
  constexpr ObjectId kObjects = 10'000;
  SlabMap<LookupRecord> table;
  for (ObjectId x = 0; x < kObjects; ++x) table.At(table.Insert(x)) = {};
  Rng rng(11);
  for (auto _ : state) {
    const auto x = static_cast<ObjectId>(rng.NextBounded(kObjects));
    LookupRecord* rec = table.Find(x);
    ++rec->rcnt;
    benchmark::DoNotOptimize(rec->rcnt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EntryLookupSlab);

void BM_BatchedDispatch(benchmark::State& state) {
  // The batched-vs-per-event arrival pair. Arg 1 runs the stock Zipf
  // workload, which is time-invariant, so deterministic arrivals take the
  // batched GatewayArrivals path. Arg 0 wraps the same Zipf in a
  // DemandShiftWorkload whose shift never fires: draw-for-draw identical
  // requests, but time_invariant() is false, forcing the per-event
  // SchedulePeriodic path. The items/sec gap is the batching win.
  const bool batched = state.range(0) == 1;
  const double kSimSeconds = 10.0;
  std::int64_t requests = 0;
  for (auto _ : state) {
    state.PauseTiming();
    driver::SimConfig config;
    config.duration = SecondsToSim(kSimSeconds);
    config.workload = driver::WorkloadKind::kZipf;
    driver::HostingSimulation sim(config);
    if (!batched) {
      sim.SetWorkload(std::make_unique<workload::DemandShiftWorkload>(
          std::make_unique<workload::ZipfWorkload>(config.num_objects),
          std::make_unique<workload::ZipfWorkload>(config.num_objects),
          SecondsToSim(kSimSeconds * 1000)));
    }
    state.ResumeTiming();
    const driver::RunReport report = sim.Run();
    requests += report.total_requests;
    benchmark::DoNotOptimize(report.total_requests);
  }
  state.SetItemsProcessed(requests);
}
BENCHMARK(BM_BatchedDispatch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
