// Figure 7: relocation traffic (object copies between hosts) as a
// percentage of total backbone traffic, over time, for the four workloads.
//
// Expected shape (paper): the overhead is "always below 2.5% of (already
// reduced) total traffic", highest during the initial adjustment.
#include <iomanip>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace radar;
  const bench::BenchOptions options = bench::ParseBenchArgs(argc, argv);
  driver::SimConfig base = bench::PaperConfig();
  bench::PrintHeader(std::cout, "Figure 7: network overhead", base);

  runner::ExperimentPlan plan = bench::PaperPlan("fig7_overhead");
  for (const driver::WorkloadKind kind : bench::PaperWorkloads()) {
    driver::SimConfig config = base;
    config.workload = kind;
    plan.Add(driver::WorkloadKindName(kind), config);
  }

  const runner::SweepResult sweep = bench::RunSweep(plan, options);

  for (const runner::RunResult& run : sweep.runs) {
    const driver::RunReport& report = run.report;
    std::cout << "---- workload: " << report.workload_name << " ----\n";
    std::cout << std::fixed;
    std::cout << "  total overhead: " << std::setprecision(2)
              << report.traffic.OverheadPercent() << "% ("
              << report.object_copies << " object copies, "
              << report.TotalRelocations() << " relocations)\n";
    std::cout << "  t(s)  overhead(% of total traffic)\n";
    const auto series = report.traffic.OverheadPercentSeries();
    const std::size_t n = report.CompleteBuckets(series.size());
    for (std::size_t i = 0; i < n; ++i) {
      std::cout << std::setw(6) << std::setprecision(0)
                << SimToSeconds(static_cast<SimTime>(i) *
                                report.bucket_width)
                << std::setw(10) << std::setprecision(3) << series[i]
                << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
