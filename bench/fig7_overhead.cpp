// Figure 7: relocation traffic (object copies between hosts) as a
// percentage of total backbone traffic, over time, for the four workloads.
//
// Expected shape (paper): the overhead is "always below 2.5% of (already
// reduced) total traffic", highest during the initial adjustment.
#include <iomanip>
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace radar;
  driver::SimConfig base = bench::PaperConfig();
  bench::PrintHeader(std::cout, "Figure 7: network overhead", base);

  for (const driver::WorkloadKind kind : bench::PaperWorkloads()) {
    driver::SimConfig config = base;
    config.workload = kind;
    const driver::RunReport report = bench::RunOnce(config);

    std::cout << "---- workload: " << driver::WorkloadKindName(kind)
              << " ----\n";
    std::cout << std::fixed;
    std::cout << "  total overhead: " << std::setprecision(2)
              << report.traffic.OverheadPercent() << "% ("
              << report.object_copies << " object copies, "
              << report.TotalRelocations() << " relocations)\n";
    std::cout << "  t(s)  overhead(% of total traffic)\n";
    const auto series = report.traffic.OverheadPercentSeries();
    const std::size_t n = report.CompleteBuckets(series.size());
    for (std::size_t i = 0; i < n; ++i) {
      std::cout << std::setw(6) << std::setprecision(0)
                << SimToSeconds(static_cast<SimTime>(i) *
                                report.bucket_width)
                << std::setw(10) << std::setprecision(3) << series[i]
                << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
