// Table 2: adjustment time and average number of replicas per workload.
//
// Expected shape (paper): adjustment times of 20-23 minutes; average
// replicas 2.62 (hot-sites), 2.59 (hot-pages), 1.49 (regional), 1.86
// (zipf) — small numbers against 53 hosts, regional smallest.
#include <iomanip>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace radar;
  const bench::BenchOptions options = bench::ParseBenchArgs(argc, argv);
  driver::SimConfig base = bench::PaperConfig();
  bench::PrintHeader(std::cout,
                     "Table 2: adjustment time and average replicas", base);

  runner::ExperimentPlan plan = bench::PaperPlan("table2_adjustment");
  for (const driver::WorkloadKind kind : bench::PaperWorkloads()) {
    driver::SimConfig config = base;
    config.workload = kind;
    if (kind == driver::WorkloadKind::kHotSites) {
      config.duration = 2 * base.duration;
    }
    plan.Add(driver::WorkloadKindName(kind), config);
  }

  const runner::SweepResult sweep = bench::RunSweep(plan, options);

  std::cout << "  Workload    Adjustment Time (min:sec)   "
               "Average Number of Replicas\n";
  for (const runner::RunResult& run : sweep.runs) {
    const double adjustment = run.report.AdjustmentTimeSeconds();
    std::cout << "  " << std::left << std::setw(12) << run.name
              << std::right << std::setw(14)
              << (adjustment >= 0.0 ? FormatMinutes(adjustment)
                                    : std::string("n/a"))
              << std::setw(31) << std::fixed << std::setprecision(2)
              << run.report.final_avg_replicas << "\n";
  }
  std::cout << "\n  (paper: hot-sites 20 min / 2.62, hot-pages 22 / 2.59,"
            << " regional 20 / 1.49, zipf 23 / 1.86)\n";
  return 0;
}
