// Availability under faults: how the replica floor trades repair traffic
// for unavailability as the host crash rate grows.
//
// Not a figure from the paper — the paper assumes a perfect platform —
// but the natural follow-up question for a hosting service: Sec. 2 argues
// replication is also the availability mechanism, so this bench sweeps
// host MTBF x replica floor on the UUNET backbone (zipf workload, mild
// link faults and control-message loss always on) and reports the
// availability block of each run. The plan quiesces at 80% of the run so
// the end-of-run invariant (every object back at its floor, zero lost)
// is part of what the sweep checks.
//
// Emits BENCH_avail.json (SweepJson; per-run "availability" objects) —
// --json overrides the path. --fault-plan replaces the built-in base
// plan; --replica-floor restricts the floor sweep to one value.
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault_plan.h"

int main(int argc, char** argv) {
  using namespace radar;
  bench::BenchOptions options = bench::ParseBenchArgs(argc, argv);
  if (options.json_path.empty()) options.json_path = "BENCH_avail.json";

  driver::SimConfig base = bench::PaperConfig();
  bench::ApplyFaultOptions(options, &base);
  if (base.faults.Empty()) {
    // The built-in chaos baseline: link flaps and lossy control messages
    // are always on; the host crash rate is the swept dimension.
    base.faults.link_faults = {/*mtbf_s=*/900.0, /*mttr_s=*/45.0};
    base.faults.SetDropProb(fault::MessageClass::kRequest, 0.01);
    base.faults.SetDropProb(fault::MessageClass::kReplicate, 0.02);
    base.faults.SetDropProb(fault::MessageClass::kMigrate, 0.02);
    base.faults.SetDropProb(fault::MessageClass::kAck, 0.02);
  }
  base.faults.quiesce_at = base.duration - base.duration / 5;

  const double mttr_s = 60.0;
  const std::vector<double> host_mtbfs_s = {1200.0, 600.0, 300.0};
  const std::vector<int> floors = options.replica_floor > 0
                                      ? std::vector<int>{options.replica_floor}
                                      : std::vector<int>{1, 2, 3};

  bench::PrintHeader(std::cout, "Availability: host MTBF x replica floor",
                     base);

  runner::ExperimentPlan plan = bench::PaperPlan("availability");
  for (const double host_mtbf_s : host_mtbfs_s) {
    for (const int floor : floors) {
      driver::SimConfig config = base;
      config.faults.host_faults = {host_mtbf_s, mttr_s};
      config.replica_floor = floor;
      plan.Add("mtbf" + std::to_string(static_cast<int>(host_mtbf_s)) +
                   "/floor" + std::to_string(floor),
               config);
    }
  }

  const runner::SweepResult sweep = bench::RunSweep(plan, options);

  std::cout << "mtbf(s) floor  crashes  failed-req  windows  unavail-obj-s"
               "  mean-ttr(s)  restored  lost\n";
  std::size_t run = 0;
  for (const double host_mtbf_s : host_mtbfs_s) {
    for (const int floor : floors) {
      const driver::AvailabilityReport& a =
          sweep.runs[run++].report.availability;
      std::cout << std::fixed << std::setprecision(0) << std::setw(7)
                << host_mtbf_s << std::setw(6) << floor << std::setw(9)
                << a.host_crashes << std::setw(12) << a.failed_requests
                << std::setw(9) << a.unavailability_windows
                << std::setprecision(1) << std::setw(15)
                << a.unavailable_object_seconds << std::setw(13)
                << a.mean_time_to_repair_s << std::setw(10)
                << a.replicas_restored << std::setw(6) << a.objects_lost
                << "\n";
    }
  }
  return 0;
}
