// Ablation A4: responsiveness to demand-pattern changes, and the value of
// en-masse relocation.
//
// The system runs under the regional workload until it has adapted, then
// the demand pattern flips to zipf (a global flash of popularity). We
// measure how long the re-adjustment takes, with and without bulk
// offloading — the paper argues that relocating "multiple objects at
// once, without waiting for new access statistics after each move" is
// what keeps the system responsive at scale (Sec. 1.2).
#include <iomanip>
#include <iostream>
#include <memory>

#include "bench_util.h"

namespace {

// Runs on a SweepRunner worker thread: builds its own simulation and
// workload, so it is safe to execute concurrently with the other run.
radar::driver::RunReport RunShift(const radar::driver::SimConfig& config,
                                  radar::SimTime shift_at) {
  using namespace radar;
  driver::HostingSimulation sim(config);
  auto before = std::make_unique<workload::RegionalWorkload>(
      config.num_objects, sim.topology());
  auto after = std::make_unique<workload::ZipfWorkload>(config.num_objects);
  sim.SetWorkload(std::make_unique<workload::DemandShiftWorkload>(
      std::move(before), std::move(after), shift_at));
  return sim.Run();
}

/// Seconds after the shift until the traffic rate settles to within 10%
/// of the post-shift equilibrium.
double ReAdjustSeconds(const radar::driver::RunReport& report,
                       radar::SimTime shift_at) {
  using namespace radar;
  const auto& payload = report.traffic.payload();
  const std::size_t n = report.CompleteBuckets(payload.num_buckets());
  const auto shift_bucket =
      static_cast<std::size_t>(shift_at / report.bucket_width);
  if (n <= shift_bucket + 4) return -1.0;
  const std::size_t tail = (n - shift_bucket) / 4;
  const double equilibrium =
      payload.MeanRateOver(n - std::max<std::size_t>(tail, 1), n - 1);
  const double threshold = 1.10 * equilibrium;
  int run = 0;
  for (std::size_t i = shift_bucket; i < n; ++i) {
    if (payload.RateAt(i) <= threshold) {
      ++run;
      if (run >= 3) {
        return SimToSeconds(payload.BucketStart(i + 1 -
                                                static_cast<std::size_t>(run)) -
                            shift_at);
      }
    } else {
      run = 0;
    }
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radar;
  const bench::BenchOptions options = bench::ParseBenchArgs(argc, argv);
  driver::SimConfig base = bench::PaperConfig();
  base.duration = 2 * base.duration;
  const SimTime shift_at = base.duration / 2;
  bench::PrintHeader(std::cout,
                     "Ablation A4: responsiveness to a demand shift "
                     "(regional -> zipf at half-time)",
                     base);

  runner::ExperimentPlan plan = bench::PaperPlan("ablation_responsiveness");
  for (const bool bulk : {true, false}) {
    driver::SimConfig config = base;
    config.protocol.bulk_offload = bulk;
    plan.AddCustom(bulk ? "bulk-offload" : "single-object", config,
                   [shift_at](const driver::SimConfig& c) {
                     return RunShift(c, shift_at);
                   });
  }

  const runner::SweepResult sweep = bench::RunSweep(plan, options);

  for (const runner::RunResult& run : sweep.runs) {
    const bool bulk = run.name == "bulk-offload";
    const double readjust = ReAdjustSeconds(run.report, shift_at);
    std::cout << (bulk ? "[en-masse offloading (paper)]\n"
                       : "[one object per round (ablation)]\n");
    std::cout << std::fixed << std::setprecision(1);
    std::cout << "  re-adjustment after shift: "
              << (readjust >= 0.0 ? FormatMinutes(readjust)
                                  : std::string("did not settle"))
              << "\n";
    std::cout << "  relocations: " << run.report.TotalRelocations()
              << " (load-migrations " << run.report.offload_migrations
              << ", load-replications " << run.report.offload_replications
              << ")\n";
    std::cout << "  equilibrium bandwidth after shift: "
              << std::setprecision(0)
              << run.report.EquilibriumBandwidthRate()
              << " byte-hops/s\n\n";
  }
  return 0;
}
