// Ablation A4: responsiveness to demand-pattern changes, and the value of
// en-masse relocation.
//
// The system runs under the regional workload until it has adapted, then
// the demand pattern flips to zipf (a global flash of popularity). We
// measure how long the re-adjustment takes, with and without bulk
// offloading — the paper argues that relocating "multiple objects at
// once, without waiting for new access statistics after each move" is
// what keeps the system responsive at scale (Sec. 1.2).
#include <iomanip>
#include <iostream>
#include <memory>

#include "bench_util.h"

namespace {

radar::driver::RunReport RunShift(radar::driver::SimConfig config,
                                  radar::SimTime shift_at) {
  using namespace radar;
  driver::HostingSimulation sim(config);
  auto before = std::make_unique<workload::RegionalWorkload>(
      config.num_objects, sim.topology());
  auto after = std::make_unique<workload::ZipfWorkload>(config.num_objects);
  sim.SetWorkload(std::make_unique<workload::DemandShiftWorkload>(
      std::move(before), std::move(after), shift_at));
  return sim.Run();
}

/// Seconds after the shift until the traffic rate settles to within 10%
/// of the post-shift equilibrium.
double ReAdjustSeconds(const radar::driver::RunReport& report,
                       radar::SimTime shift_at) {
  using namespace radar;
  const auto& payload = report.traffic.payload();
  const std::size_t n = report.CompleteBuckets(payload.num_buckets());
  const auto shift_bucket =
      static_cast<std::size_t>(shift_at / report.bucket_width);
  if (n <= shift_bucket + 4) return -1.0;
  const std::size_t tail = (n - shift_bucket) / 4;
  const double equilibrium =
      payload.MeanRateOver(n - std::max<std::size_t>(tail, 1), n - 1);
  const double threshold = 1.10 * equilibrium;
  int run = 0;
  for (std::size_t i = shift_bucket; i < n; ++i) {
    if (payload.RateAt(i) <= threshold) {
      ++run;
      if (run >= 3) {
        return SimToSeconds(payload.BucketStart(i + 1 -
                                                static_cast<std::size_t>(run)) -
                            shift_at);
      }
    } else {
      run = 0;
    }
  }
  return -1.0;
}

}  // namespace

int main() {
  using namespace radar;
  driver::SimConfig base = bench::PaperConfig();
  base.duration = 2 * base.duration;
  const SimTime shift_at = base.duration / 2;
  bench::PrintHeader(std::cout,
                     "Ablation A4: responsiveness to a demand shift "
                     "(regional -> zipf at half-time)",
                     base);

  for (const bool bulk : {true, false}) {
    driver::SimConfig config = base;
    config.protocol.bulk_offload = bulk;
    const driver::RunReport report = RunShift(config, shift_at);
    const double readjust = ReAdjustSeconds(report, shift_at);
    std::cout << (bulk ? "[en-masse offloading (paper)]\n"
                       : "[one object per round (ablation)]\n");
    std::cout << std::fixed << std::setprecision(1);
    std::cout << "  re-adjustment after shift: "
              << (readjust >= 0.0 ? FormatMinutes(readjust)
                                  : std::string("did not settle"))
              << "\n";
    std::cout << "  relocations: " << report.TotalRelocations()
              << " (load-migrations " << report.offload_migrations
              << ", load-replications " << report.offload_replications
              << ")\n";
    std::cout << "  equilibrium bandwidth after shift: "
              << std::setprecision(0) << report.EquilibriumBandwidthRate()
              << " byte-hops/s\n\n";
  }
  return 0;
}
