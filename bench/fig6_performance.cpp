// Figure 6: backbone bandwidth and mean response latency over time for the
// four workloads, dynamic replication vs the static initial placement.
//
// Expected shape (paper, Sec. 6.2): bandwidth settles ~60-70% below the
// static level for zipf/hot-sites/hot-pages and ~90% below for regional;
// latency improves ~20% (zipf, hot-pages) to ~28% (regional); hot-sites
// latency starts extremely high (queues at the popular sites) and
// collapses once the hot spots are dissolved.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace radar;
  const bench::BenchOptions options = bench::ParseBenchArgs(argc, argv);
  driver::SimConfig base = bench::PaperConfig();
  bench::PrintHeader(std::cout, "Figure 6: performance of dynamic replication",
                     base);

  runner::ExperimentPlan plan = bench::PaperPlan("fig6_performance");
  for (const driver::WorkloadKind kind : bench::PaperWorkloads()) {
    driver::SimConfig dynamic_config = base;
    dynamic_config.workload = kind;
    if (kind == driver::WorkloadKind::kHotSites) {
      // The hot sites start 1.8x over capacity; give the run time to shed
      // the load and drain the accumulated queues.
      dynamic_config.duration = 2 * base.duration;
    }

    driver::SimConfig static_config = dynamic_config;
    static_config.placement = baselines::PlacementPolicy::kStatic;
    static_config.duration = base.duration / 3;  // static equilibrium is
                                                 // immediate

    const std::string name = driver::WorkloadKindName(kind);
    plan.Add(name + "/dynamic", dynamic_config);
    plan.Add(name + "/static", static_config);
  }

  const runner::SweepResult sweep = bench::RunSweep(plan, options);

  for (std::size_t i = 0; i < sweep.runs.size(); i += 2) {
    const driver::RunReport& dynamic_report = sweep.runs[i].report;
    const driver::RunReport& static_report = sweep.runs[i + 1].report;

    std::cout << "---- workload: " << dynamic_report.workload_name
              << " ----\n";
    std::cout << "[dynamic]\n";
    dynamic_report.PrintSummary(std::cout);
    std::cout << "[static]\n";
    static_report.PrintSummary(std::cout);

    const double bw_vs_static =
        static_report.EquilibriumBandwidthRate() > 0.0
            ? 100.0 * (static_report.EquilibriumBandwidthRate() -
                       dynamic_report.EquilibriumBandwidthRate()) /
                  static_report.EquilibriumBandwidthRate()
            : 0.0;
    const double lat_vs_static =
        static_report.EquilibriumLatency() > 0.0
            ? 100.0 * (static_report.EquilibriumLatency() -
                       dynamic_report.EquilibriumLatency()) /
                  static_report.EquilibriumLatency()
            : 0.0;
    std::cout << "=> equilibrium bandwidth reduction vs static: "
              << bw_vs_static << "%\n"
              << "=> equilibrium latency reduction vs static: "
              << lat_vs_static << "%\n\n";
    std::cout << "[dynamic series]\n";
    dynamic_report.PrintSeries(std::cout);
    std::cout << "\n";
  }
  return 0;
}
