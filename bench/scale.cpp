// Scale sweep: node-count x object-count operating points, from the
// paper's 53-router UUNET up to 10k-node generated transit-stub
// backbones. Each entry reports engine throughput, process memory, and
// the cost of a fault epoch on the active latency backend — the numbers
// behind the "break the O(n^2) wall" claim: the dense backend rebuilds
// two n^2 matrices per epoch, the sparse gateway-pivot oracle touches
// O(rows x n) and only for rows a changed link actually dirties.
//
// Memory is read from getrusage(RUSAGE_SELF).ru_maxrss, which is a
// process-lifetime high-water mark — entries therefore run smallest
// first, and each entry also samples current RSS (/proc/self/statm) so
// the per-entry footprint stays visible even after a bigger predecessor.
//
// Every run can emit a schema-versioned BENCH_scale.json
// (radar.scalebench/1) that CI archives next to BENCH_perf.json.
//
// Command line:
//   --json PATH   write the radar.scalebench/1 document to PATH
//   --entry NAME  run only the named entry (see kEntries)
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

#include "driver/config.h"
#include "driver/hosting_simulation.h"
#include "driver/report.h"
#include "driver/report_json.h"
#include "net/net_model.h"
#include "net/topology_gen.h"
#include "net/uunet.h"

namespace {

using namespace radar;

constexpr const char* kScaleSchema = "radar.scalebench/1";

struct Entry {
  const char* name;
  const char* topology;  ///< generator spec; "" = UUNET backbone
  ObjectId objects;
  double sim_seconds;
};

// Ordered by memory footprint (see the ru_maxrss note above). The object
// axis probes per-object state (records, redirector entries, counts);
// the node axis probes the latency backend and per-node engine state.
constexpr Entry kEntries[] = {
    {"uunet-10k", "", 10'000, 120.0},
    {"ts1k-10k", "ts:n=1000,seed=7", 10'000, 120.0},
    {"ts1k-1m", "ts:n=1000,seed=7", 1'000'000, 60.0},
    {"ts10k-10k", "ts:n=10000,seed=7", 10'000, 60.0},
    {"ts10k-1m", "ts:n=10000,seed=7", 1'000'000, 60.0},
};

/// Rebuild-cost probes per fault epoch, averaged over a few link flaps.
constexpr int kRebuildReps = 5;

/// The dense backend's per-epoch wholesale rebuild is only affordable —
/// and only measured — up to this many nodes.
constexpr std::int32_t kDenseRebuildCap = 1000;

double ProcessCpuSeconds() {
  std::timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

double PeakRssMb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

double CurrentRssMb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long size = 0;
  long resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0.0;
  return static_cast<double>(resident) * 4096.0 / (1024.0 * 1024.0);
}

net::Topology MakeTopology(const Entry& entry) {
  if (entry.topology[0] == '\0') return net::MakeUunetBackbone();
  return net::GenerateTopology(entry.topology);
}

struct RebuildCost {
  bool dense_measured = false;
  double dense_ms_per_epoch = 0.0;
  double sparse_ms_per_epoch = 0.0;
  std::int64_t sparse_rows = 0;
  std::int64_t sparse_rows_rebuilt = 0;
};

/// One fault epoch = one link going down and later coming back. Dense
/// pays two wholesale rebuilds; sparse applies both events incrementally
/// and reports how many of its rows each pair of events dirtied.
RebuildCost MeasureRebuild(const net::Topology& topology,
                           std::int64_t object_bytes) {
  RebuildCost cost;
  const auto num_links =
      static_cast<std::int32_t>(topology.graph().num_links());

  {
    net::NetModel sparse(topology, object_bytes, net::OracleKind::kSparse);
    cost.sparse_rows =
        static_cast<std::int64_t>(sparse.sparse_oracle().num_rows());
    const std::int64_t rows_before = sparse.sparse_oracle().rows_rebuilt();
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kRebuildReps; ++i) {
      const std::int32_t link = (i * 7919) % num_links;
      sparse.OnLinkChange(link, false);
      sparse.OnLinkChange(link, true);
    }
    const auto stop = std::chrono::steady_clock::now();
    cost.sparse_ms_per_epoch =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        kRebuildReps;
    cost.sparse_rows_rebuilt =
        (sparse.sparse_oracle().rows_rebuilt() - rows_before) / kRebuildReps;
  }

  if (topology.num_nodes() <= kDenseRebuildCap) {
    net::NetModel dense(topology, object_bytes, net::OracleKind::kDense);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kRebuildReps; ++i) {
      dense.RebuildDense(topology.graph());  // down + up = two rebuilds
      dense.RebuildDense(topology.graph());
    }
    const auto stop = std::chrono::steady_clock::now();
    cost.dense_measured = true;
    cost.dense_ms_per_epoch =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        kRebuildReps;
  }
  return cost;
}

double EnvOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

[[noreturn]] void UsageAndExit(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [--json PATH] [--entry NAME]\n"
               "  --json PATH   write the radar.scalebench/1 document\n"
               "  --entry NAME  run only this entry (uunet-10k / ts1k-10k /"
               " ts1k-1m / ts10k-10k / ts10k-1m)\n",
               argv0);
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string only_entry;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& flag) -> std::string {
      const std::string prefix = flag + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag.c_str());
        UsageAndExit(argv[0], 2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      UsageAndExit(argv[0], 0);
    } else if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      json_path = value_of("--json");
    } else if (arg == "--entry" || arg.rfind("--entry=", 0) == 0) {
      only_entry = value_of("--entry");
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   arg.c_str());
      UsageAndExit(argv[0], 2);
    }
  }

  const auto seed = static_cast<std::uint64_t>(EnvOr("RADAR_BENCH_SEED", 1.0));

  driver::JsonValue doc = driver::JsonValue::MakeObject();
  doc.Set("schema", kScaleSchema);
  doc.Set("benchmark", "scale");
  doc.Set("workload", "zipf");
  doc.Set("seed", static_cast<std::int64_t>(seed));
  driver::JsonValue entries = driver::JsonValue::MakeArray();

  std::printf("==== scale: nodes x objects sweep ====\n");
  bool matched = false;
  for (const Entry& entry : kEntries) {
    if (!only_entry.empty() && only_entry != entry.name) continue;
    matched = true;

    const net::Topology topology = MakeTopology(entry);
    const net::OracleKind resolved = net::ResolveOracleKind(
        net::OracleKind::kAuto, topology.num_nodes());
    const bool is_sparse = resolved == net::OracleKind::kSparse;

    driver::SimConfig config;
    config.duration = SecondsToSim(entry.sim_seconds);
    config.num_objects = entry.objects;
    config.seed = seed;
    config.workload = driver::WorkloadKind::kZipf;

    const double cpu_start = ProcessCpuSeconds();
    const auto start = std::chrono::steady_clock::now();
    driver::HostingSimulation sim(config, topology);
    const driver::RunReport report = sim.Run();
    const auto stop = std::chrono::steady_clock::now();
    const double cpu_seconds = ProcessCpuSeconds() - cpu_start;
    const double wall_seconds =
        std::chrono::duration<double>(stop - start).count();
    const double current_rss_mb = CurrentRssMb();
    const double peak_rss_mb = PeakRssMb();
    const double events_per_sec =
        wall_seconds > 0.0
            ? static_cast<double>(sim.events_executed()) / wall_seconds
            : 0.0;

    const RebuildCost rebuild =
        MeasureRebuild(topology, config.object_bytes);

    std::printf(
        "%-10s nodes=%6d gw=%4zu objects=%8lld %s  requests=%9lld  "
        "wall=%7.3fs  %10.0f ev/s  rss=%7.1fMB  epoch: sparse=%8.3fms"
        " (%lld/%lld rows)%s\n",
        entry.name, topology.num_nodes(), topology.GatewayNodes().size(),
        static_cast<long long>(entry.objects),
        is_sparse ? "sparse" : "dense ",
        static_cast<long long>(report.total_requests), wall_seconds,
        events_per_sec, peak_rss_mb, rebuild.sparse_ms_per_epoch,
        static_cast<long long>(rebuild.sparse_rows_rebuilt),
        static_cast<long long>(rebuild.sparse_rows),
        rebuild.dense_measured
            ? (" dense=" + std::to_string(rebuild.dense_ms_per_epoch) + "ms")
                  .c_str()
            : "");

    driver::JsonValue e = driver::JsonValue::MakeObject();
    e.Set("name", entry.name);
    e.Set("topology", entry.topology[0] == '\0' ? "uunet" : entry.topology);
    e.Set("nodes", static_cast<std::int64_t>(topology.num_nodes()));
    e.Set("gateways",
          static_cast<std::int64_t>(topology.GatewayNodes().size()));
    e.Set("objects", static_cast<std::int64_t>(entry.objects));
    e.Set("sim_seconds", entry.sim_seconds);
    e.Set("oracle", is_sparse ? "sparse" : "dense");
    e.Set("total_requests", report.total_requests);
    e.Set("events_executed",
          static_cast<std::int64_t>(sim.events_executed()));
    e.Set("wall_seconds", wall_seconds);
    e.Set("cpu_seconds", cpu_seconds);
    e.Set("events_per_sec", events_per_sec);
    e.Set("current_rss_mb", current_rss_mb);
    e.Set("peak_rss_mb", peak_rss_mb);
    e.Set("sparse_rebuild_ms_per_epoch", rebuild.sparse_ms_per_epoch);
    e.Set("sparse_rows", rebuild.sparse_rows);
    e.Set("sparse_rows_rebuilt_per_epoch", rebuild.sparse_rows_rebuilt);
    e.Set("dense_rebuild_ms_per_epoch",
          rebuild.dense_measured ? driver::JsonValue(rebuild.dense_ms_per_epoch)
                                 : driver::JsonValue());
    entries.Append(std::move(e));
  }
  if (!matched) {
    std::fprintf(stderr, "%s: unknown entry '%s'\n", argv[0],
                 only_entry.c_str());
    UsageAndExit(argv[0], 2);
  }
  doc.Set("entries", std::move(entries));

  if (!json_path.empty()) {
    std::string error;
    if (!driver::WriteJsonFile(json_path, doc, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return 0;
}
