// Ablation A5: redirector placement and partitioning.
//
// Every request detours through its object's redirector, so redirector
// placement adds latency (the paper: "In future, we plan to explore the
// problem of optimally placing redirectors for different objects in order
// to minimize the added latency due to them"). This bench sweeps the
// number of hash-partitioned redirectors (placed at the most central
// nodes, best-first) and, as a worst-case reference, a single redirector
// exiled to the least central node.
#include <iomanip>
#include <iostream>

#include "bench_util.h"
#include "net/routing.h"

namespace {

// A custom topology is not needed; instead we measure the detour length
// directly: mean over gateways of hops(gateway, redirector-of-x) for the
// objects each redirector serves.
double MeanDetourHops(const radar::driver::HostingSimulation& sim,
                      int redirectors) {
  using namespace radar;
  double total = 0.0;
  std::int64_t count = 0;
  for (int r = 0; r < redirectors; ++r) {
    const NodeId home = sim.redirector_home(r);
    for (NodeId g = 0; g < sim.topology().num_nodes(); ++g) {
      total += sim.routing().HopDistance(g, home);
      ++count;
    }
  }
  return total / static_cast<double>(count);
}

}  // namespace

int main() {
  using namespace radar;
  driver::SimConfig base = bench::PaperConfig();
  base.workload = driver::WorkloadKind::kZipf;
  bench::PrintHeader(std::cout,
                     "Ablation A5: redirector count and placement (zipf)",
                     base);

  std::cout << "  redirectors  detour(hops)  latency(s)  bw(byte-hops/s)\n";
  for (const int k : {1, 2, 4, 8}) {
    driver::SimConfig config = base;
    config.num_redirectors = k;
    driver::HostingSimulation sim(config);
    const double detour = MeanDetourHops(sim, k);
    const driver::RunReport report = sim.Run();
    std::cout << std::fixed << std::setw(13) << k << std::setw(14)
              << std::setprecision(2) << detour << std::setw(12)
              << std::setprecision(4) << report.EquilibriumLatency()
              << std::setw(17) << std::setprecision(0)
              << report.EquilibriumBandwidthRate() << "\n";
  }
  std::cout << "\n  (expected: more redirectors spread control load without"
            << " hurting latency —\n   the added hops stay near the"
            << " single-central-node detour; request routing\n   dominates"
            << " neither bandwidth nor equilibrium placement)\n";
  return 0;
}
