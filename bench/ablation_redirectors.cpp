// Ablation A5: redirector placement and partitioning.
//
// Every request detours through its object's redirector, so redirector
// placement adds latency (the paper: "In future, we plan to explore the
// problem of optimally placing redirectors for different objects in order
// to minimize the added latency due to them"). This bench sweeps the
// number of hash-partitioned redirectors (placed at the most central
// nodes, best-first).
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "net/routing.h"

namespace {

// A custom topology is not needed; instead we measure the detour length
// directly: mean over gateways of hops(gateway, redirector-of-x) for the
// objects each redirector serves.
double MeanDetourHops(const radar::driver::HostingSimulation& sim,
                      int redirectors) {
  using namespace radar;
  double total = 0.0;
  std::int64_t count = 0;
  for (int r = 0; r < redirectors; ++r) {
    const NodeId home = sim.redirector_home(r);
    for (NodeId g = 0; g < sim.topology().num_nodes(); ++g) {
      total += sim.routing().HopDistance(g, home);
      ++count;
    }
  }
  return total / static_cast<double>(count);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radar;
  const bench::BenchOptions options = bench::ParseBenchArgs(argc, argv);
  driver::SimConfig base = bench::PaperConfig();
  base.workload = driver::WorkloadKind::kZipf;
  bench::PrintHeader(std::cout,
                     "Ablation A5: redirector count and placement (zipf)",
                     base);

  const int counts[] = {1, 2, 4, 8};
  // Detour length is a pure function of the config; each executor fills
  // its own slot, so concurrent runs never touch shared state.
  std::vector<double> detours(std::size(counts), 0.0);

  runner::ExperimentPlan plan = bench::PaperPlan("ablation_redirectors");
  for (std::size_t i = 0; i < std::size(counts); ++i) {
    driver::SimConfig config = base;
    config.num_redirectors = counts[i];
    plan.AddCustom("redirectors=" + std::to_string(counts[i]), config,
                   [&detours, i](const driver::SimConfig& c) {
                     driver::HostingSimulation sim(c);
                     detours[i] = MeanDetourHops(sim, c.num_redirectors);
                     return sim.Run();
                   });
  }

  const runner::SweepResult sweep = bench::RunSweep(plan, options);

  std::cout << "  redirectors  detour(hops)  latency(s)  bw(byte-hops/s)\n";
  for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
    const driver::RunReport& report = sweep.runs[i].report;
    std::cout << std::fixed << std::setw(13) << counts[i] << std::setw(14)
              << std::setprecision(2) << detours[i] << std::setw(12)
              << std::setprecision(4) << report.EquilibriumLatency()
              << std::setw(17) << std::setprecision(0)
              << report.EquilibriumBandwidthRate() << "\n";
  }
  std::cout << "\n  (expected: more redirectors spread control load without"
            << " hurting latency —\n   the added hops stay near the"
            << " single-central-node detour; request routing\n   dominates"
            << " neither bandwidth nor equilibrium placement)\n";
  return 0;
}
