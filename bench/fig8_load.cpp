// Figure 8a: maximum host load over time for the four workloads — the
// protocol must pull every host below the high watermark.
// Figure 8b: one host's actual load bracketed by the running high and low
// load estimates the protocol maintains (Sec. 2.1 / Theorems 1-4).
//
// Expected shape (paper): max load converges below hw; the measured load
// always lies between the two estimates.
#include <iomanip>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace radar;
  const bench::BenchOptions options = bench::ParseBenchArgs(argc, argv);
  driver::SimConfig base = bench::PaperConfig();
  bench::PrintHeader(std::cout,
                     "Figure 8: maximum load and load estimates", base);

  runner::ExperimentPlan plan = bench::PaperPlan("fig8_load");
  for (const driver::WorkloadKind kind : bench::PaperWorkloads()) {
    driver::SimConfig config = base;
    config.workload = kind;
    if (kind == driver::WorkloadKind::kHotSites) {
      config.duration = 2 * base.duration;
    }
    config.tracked_host = 10;
    plan.Add(driver::WorkloadKindName(kind), config);
  }

  const runner::SweepResult sweep = bench::RunSweep(plan, options);

  std::cout << "---- Fig. 8a: maximum host load (req/s) over time ----\n";
  std::cout << "  t(s)";
  for (const runner::RunResult& run : sweep.runs) {
    std::cout << std::setw(11) << run.name;
  }
  std::cout << "\n";

  const driver::RunReport& first = sweep.runs[0].report;
  const std::size_t rows = first.CompleteBuckets(first.max_load.num_buckets());
  for (std::size_t i = 0; i < rows; ++i) {
    std::cout << std::fixed << std::setw(6) << std::setprecision(0)
              << SimToSeconds(static_cast<SimTime>(i) * first.bucket_width);
    for (const runner::RunResult& run : sweep.runs) {
      const double value = i < run.report.max_load.num_buckets()
                               ? run.report.max_load.MaxAt(i)
                               : 0.0;
      std::cout << std::setw(11) << std::setprecision(1) << value;
    }
    std::cout << "\n";
  }
  std::cout << "\n  high watermark: " << base.protocol.high_watermark
            << " req/s\n\n";

  std::cout << "---- Fig. 8b: load estimates vs actual (host 10, "
            << "hot-pages) ----\n";
  std::cout << "  t(s)    low-est    actual    high-est   bracketed\n";
  const driver::RunReport& hp = sweep.runs[2].report;  // hot-pages
  int violations = 0;
  for (std::size_t i = 0; i < hp.tracked_host_loads.size(); ++i) {
    const auto& s = hp.tracked_host_loads[i];
    const bool ok =
        s.lower_estimate <= s.measured && s.measured <= s.upper_estimate;
    if (!ok) ++violations;
    // Print every third sample to keep the table readable.
    if (i % 3 != 0) continue;
    std::cout << std::fixed << std::setw(6) << std::setprecision(0)
              << SimToSeconds(s.t) << std::setw(11) << std::setprecision(2)
              << s.lower_estimate << std::setw(10) << s.measured
              << std::setw(12) << s.upper_estimate << std::setw(9)
              << (ok ? "yes" : "NO") << "\n";
  }
  std::cout << "\n  estimate violations: " << violations << " / "
            << hp.tracked_host_loads.size() << " samples\n";
  return 0;
}
