// Ablation A2: deletion threshold u and the m/u ratio.
//
// u controls how aggressively replicas are culled; m/u must exceed 4
// (Theorem 5) or replicas created by a legitimate replication can fall
// under the deletion threshold and oscillate (create/delete churn). The
// paper uses m/u = 6 "to prevent boundary effects" and defers the sweep
// to [1]; this bench performs both sweeps, including a configuration that
// deliberately violates the stability rule.
#include <iomanip>
#include <iostream>

#include "bench_util.h"

namespace {

void Row(const radar::driver::RunReport& report, const std::string& label,
         bool stable) {
  using namespace radar;
  std::cout << std::fixed << "  " << std::left << std::setw(18) << label
            << std::right << (stable ? "  yes   " : "  NO    ")
            << std::setw(14) << std::setprecision(0)
            << report.EquilibriumBandwidthRate() << std::setw(10)
            << std::setprecision(2) << report.final_avg_replicas
            << std::setw(12) << report.affinity_drops << std::setw(11)
            << std::setprecision(2) << report.traffic.OverheadPercent()
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radar;
  const bench::BenchOptions options = bench::ParseBenchArgs(argc, argv);
  driver::SimConfig base = bench::PaperConfig();
  base.workload = driver::WorkloadKind::kHotPages;
  bench::PrintHeader(
      std::cout, "Ablation A2: deletion/replication thresholds (hot-pages)",
      base);

  runner::ExperimentPlan plan = bench::PaperPlan("ablation_thresholds");
  std::vector<bool> stable;
  for (const double u : {0.01, 0.03, 0.09}) {
    driver::SimConfig config = base;
    config.protocol.deletion_threshold_u = u;
    config.protocol.replication_threshold_m = 6.0 * u;
    stable.push_back(config.protocol.IsStable());
    plan.Add("u=" + std::to_string(u).substr(0, 5), config);
  }
  for (const double ratio : {2.0, 4.5, 6.0, 12.0}) {
    driver::SimConfig config = base;
    config.protocol.deletion_threshold_u = 0.03;
    config.protocol.replication_threshold_m = ratio * 0.03;
    stable.push_back(config.protocol.IsStable());
    plan.Add("m/u=" + std::to_string(ratio).substr(0, 4), config);
  }

  const runner::SweepResult sweep = bench::RunSweep(plan, options);

  std::cout << "  config            4u<m?   bw(bh/s)     replicas"
               "   aff-drops  overhead%\n";
  std::cout << "-- u sweep (m = 6u, the paper's ratio) --\n";
  for (std::size_t i = 0; i < 3; ++i) {
    Row(sweep.runs[i].report, sweep.runs[i].name, stable[i]);
  }
  std::cout << "-- m/u sweep (u = 0.03) --\n";
  for (std::size_t i = 3; i < sweep.runs.size(); ++i) {
    Row(sweep.runs[i].report, sweep.runs[i].name, stable[i]);
  }

  std::cout << "\n  (expected: smaller u -> more replicas and overhead;"
            << " m/u = 2 violates Theorem 5's\n   4u < m rule and inflates"
            << " the affinity-drop churn relative to stable settings)\n";
  return 0;
}
