// Figure 9: performance of dynamic replication under high system load,
// simulated by lowering the watermarks to hw=50 / lw=40 so that the
// average per-host load sits at the low watermark.
//
// Expected shape (paper): the protocol still works, but responsiveness
// drops (recipients near lw cannot absorb bulk transfers) and the gains
// shrink — bandwidth consumption ends 2% (hot-sites) to 17% (regional)
// above the low-load case.
#include <iomanip>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace radar;
  const bench::BenchOptions options = bench::ParseBenchArgs(argc, argv);
  driver::SimConfig base = bench::PaperConfig();
  bench::PrintHeader(std::cout, "Figure 9: dynamic replication, high load",
                     base);

  runner::ExperimentPlan plan = bench::PaperPlan("fig9_highload");
  for (const driver::WorkloadKind kind : bench::PaperWorkloads()) {
    driver::SimConfig low = base;
    low.workload = kind;
    if (kind == driver::WorkloadKind::kHotSites) {
      low.duration = 2 * base.duration;
    }
    driver::SimConfig high = low;
    high.ApplyHighLoad();  // hw=50, lw=40
    // With the average load sitting exactly at lw, relocations only
    // happen when a recipient's measured load dips below the watermark,
    // so adaptation slows to a crawl; give the high-load runs double the
    // time and expect them to still be mid-adaptation (the paper:
    // "the responsiveness of the system decreases").
    high.duration = 2 * low.duration;

    const std::string name = driver::WorkloadKindName(kind);
    plan.Add(name + "/low", low);
    plan.Add(name + "/high", high);
  }

  const runner::SweepResult sweep = bench::RunSweep(plan, options);

  std::cout << std::fixed;
  for (std::size_t i = 0; i < sweep.runs.size(); i += 2) {
    const driver::RunReport& low_report = sweep.runs[i].report;
    const driver::RunReport& high_report = sweep.runs[i + 1].report;

    std::cout << "---- workload: " << low_report.workload_name << " ----\n";
    std::cout << "[high load hw=50 lw=40]\n";
    high_report.PrintSummary(std::cout);

    const double bw_low = low_report.EquilibriumBandwidthRate();
    const double bw_high = high_report.EquilibriumBandwidthRate();
    const double lat_low = low_report.EquilibriumLatency();
    const double lat_high = high_report.EquilibriumLatency();
    std::cout << std::setprecision(1);
    std::cout << "=> equilibrium bandwidth vs low-load case: "
              << (bw_low > 0 ? 100.0 * (bw_high - bw_low) / bw_low : 0.0)
              << "% (paper: +2%..+17%)\n";
    std::cout << std::setprecision(4);
    std::cout << "=> equilibrium latency: high=" << lat_high
              << "s low=" << lat_low << "s\n";
    const double adj_low = low_report.AdjustmentTimeSeconds();
    const double adj_high = high_report.AdjustmentTimeSeconds();
    std::cout << "=> adjustment time: high="
              << (adj_high >= 0 ? FormatMinutes(adj_high) : "n/a")
              << " low=" << (adj_low >= 0 ? FormatMinutes(adj_low) : "n/a")
              << " (high load reduces responsiveness)\n\n";
  }
  return 0;
}
